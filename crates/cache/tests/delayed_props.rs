//! Differential property battery for the delayed-hit substrate: a
//! naive BTreeMap-of-deadlines reference model is replayed against the
//! production [`InflightQueue`] over arbitrary request/epoch sequences,
//! and must agree on every classification (hit / delayed hit / miss),
//! every residual latency, every retired follower count, and the full
//! outstanding-fetch state — for every eviction policy.

use proptest::prelude::*;
use starcdn_cache::object::ObjectId;
use starcdn_cache::policy::{Cache, PolicyKind};
use starcdn_cache::simulate::{access_delayed, DelayedOutcome};
use starcdn_cache::InflightQueue;
use std::collections::BTreeMap;

/// One outstanding fetch in the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShadowFetch {
    deadline: u64,
    size: u64,
    followers: u64,
    delay: u64,
}

/// The reference: a plain map of object id to fetch deadline, driven
/// by a from-scratch restatement of the serve-order rules (retire,
/// then presence, then coalesce, then register) rather than the
/// production queue's API.
#[derive(Default)]
struct ShadowFetches {
    fetches: BTreeMap<u64, ShadowFetch>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowOutcome {
    Hit,
    DelayedHit { residual: u64 },
    Miss,
}

impl ShadowFetches {
    fn serve<C: Cache + ?Sized>(
        &mut self,
        cache: &mut C,
        id: u64,
        size: u64,
        now: u64,
        fetch_epochs: u64,
    ) -> (ShadowOutcome, u64) {
        let mut retired_followers = 0;
        if self.fetches.get(&id).is_some_and(|f| f.deadline <= now) {
            let f = self.fetches.remove(&id).expect("deadline just observed");
            cache.insert(ObjectId(id), f.size);
            cache.record_fetch_delay(ObjectId(id), f.delay);
            retired_followers = f.followers;
        }
        let out = if cache.contains(ObjectId(id)) {
            assert!(cache.access(ObjectId(id), size).is_hit());
            ShadowOutcome::Hit
        } else if let Some(f) = self.fetches.get_mut(&id) {
            // Still outstanding: the retire step above already removed
            // any fetch whose deadline has passed.
            let residual = f.deadline - now;
            f.followers += 1;
            f.delay += residual;
            ShadowOutcome::DelayedHit { residual }
        } else {
            self.fetches.insert(
                id,
                ShadowFetch {
                    deadline: now + fetch_epochs,
                    size,
                    followers: 0,
                    delay: fetch_epochs,
                },
            );
            ShadowOutcome::Miss
        };
        (out, retired_followers)
    }
}

/// An arbitrary request schedule: object, size, and epochs to advance
/// the clock before serving (0 = same epoch as the previous request).
fn schedule() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((0u64..12, 1u64..60, 0u64..4), 1..400)
}

proptest! {
    /// The production queue and the naive reference classify every
    /// request identically, charge the same residuals, retire the same
    /// follower counts, and leave identical outstanding-fetch state —
    /// under every eviction policy.
    #[test]
    fn prop_shadow_model_agrees_on_every_classification(
        ops in schedule(),
        fetch_epochs in 1u64..6,
    ) {
        for kind in PolicyKind::ALL {
            let mut prod_cache = kind.build(200);
            let mut shadow_cache = kind.build(200);
            let mut queue = InflightQueue::new();
            let mut shadow = ShadowFetches::default();
            let mut now = 0u64;
            for &(id, size, advance) in &ops {
                now += advance;
                let (got, got_followers) =
                    access_delayed(&mut *prod_cache, &mut queue, ObjectId(id), size, now, fetch_epochs);
                let (want, want_followers) =
                    shadow.serve(&mut *shadow_cache, id, size, now, fetch_epochs);
                let matches = matches!(
                    (&got, &want),
                    (DelayedOutcome::Hit, ShadowOutcome::Hit)
                        | (DelayedOutcome::Miss, ShadowOutcome::Miss)
                );
                let matches = matches
                    || matches!(
                        (&got, &want),
                        (
                            DelayedOutcome::DelayedHit { residual_epochs },
                            ShadowOutcome::DelayedHit { residual },
                        ) if residual_epochs == residual
                    );
                prop_assert!(
                    matches,
                    "{}: epoch {} object {}: production {:?} vs reference {:?}",
                    kind.name(), now, id, got, want
                );
                prop_assert_eq!(
                    got_followers, want_followers,
                    "{}: retired follower counts diverged", kind.name()
                );
            }
            // The outstanding state must agree exactly: same fetches,
            // same deadlines, same coalesced followers and aggregate
            // delay aboard each.
            let state = queue.to_state();
            prop_assert_eq!(state.fetches.len(), shadow.fetches.len(), "{}", kind.name());
            for e in &state.fetches {
                let s = shadow.fetches.get(&e.id.0).expect("reference has the fetch");
                prop_assert_eq!(e.completes_at, s.deadline, "{}", kind.name());
                prop_assert_eq!(e.size, s.size, "{}", kind.name());
                prop_assert_eq!(e.followers, s.followers, "{}", kind.name());
                prop_assert_eq!(e.delay_epochs, s.delay, "{}", kind.name());
            }
            // And the caches saw the same admissions in the same order.
            for id in 0..12u64 {
                prop_assert_eq!(
                    prod_cache.contains(ObjectId(id)),
                    shadow_cache.contains(ObjectId(id)),
                    "{}: cache contents diverged at object {}", kind.name(), id
                );
            }
        }
    }

    /// Conservation and bounds that hold for any schedule: outcomes
    /// partition requests; a delayed hit's residual is positive and
    /// never exceeds the fetch latency; a fetch's aggregate delay is
    /// at least the full latency and grows by exactly its followers'
    /// residuals.
    #[test]
    fn prop_outcomes_partition_and_residuals_bounded(
        ops in schedule(),
        fetch_epochs in 1u64..6,
    ) {
        let mut cache = PolicyKind::Mad.build(200);
        let mut queue = InflightQueue::new();
        let (mut hits, mut delayed, mut misses) = (0u64, 0u64, 0u64);
        let mut residual_total = 0u64;
        let mut retired_followers = 0u64;
        let mut now = 0u64;
        for &(id, size, advance) in &ops {
            now += advance;
            let (out, followers) =
                access_delayed(&mut *cache, &mut queue, ObjectId(id), size, now, fetch_epochs);
            retired_followers += followers;
            match out {
                DelayedOutcome::Hit => hits += 1,
                DelayedOutcome::DelayedHit { residual_epochs } => {
                    prop_assert!(residual_epochs >= 1, "zero residual would be a plain hit");
                    prop_assert!(
                        residual_epochs <= fetch_epochs,
                        "residual {} exceeds the full fetch latency {}",
                        residual_epochs, fetch_epochs
                    );
                    residual_total += residual_epochs;
                    delayed += 1;
                }
                DelayedOutcome::Miss => misses += 1,
            }
        }
        prop_assert_eq!(hits + delayed + misses, ops.len() as u64);
        // Followers still aboard outstanding fetches + followers already
        // retired account for every delayed hit.
        let outstanding: u64 = queue.to_state().fetches.iter().map(|f| f.followers).sum();
        prop_assert_eq!(outstanding + retired_followers, delayed);
        // Each outstanding fetch carries the full latency plus its
        // followers' residuals; summed residuals match the histogram
        // total exactly.
        let outstanding_delay: u64 = queue.to_state().fetches.iter().map(|f| f.delay_epochs).sum();
        let outstanding_base = queue.len() as u64 * fetch_epochs;
        prop_assert!(outstanding_delay >= outstanding_base);
        prop_assert!(outstanding_delay - outstanding_base <= residual_total);
    }
}
