//! Property tests over every cache policy: byte-capacity safety,
//! hit/miss conservation, and the per-policy eviction-order invariants
//! (LRU/FIFO shadow models, SLRU segment promotion, SIEVE visited bits,
//! TinyLFU admission monotonicity, MAD inflation-floor monotonicity and
//! its exact-LRU degeneration without a delay signal).

use proptest::prelude::*;
use starcdn_cache::lfu::LfuCache;
use starcdn_cache::lru::LruCache;
use starcdn_cache::mad::MadCache;
use starcdn_cache::object::ObjectId;
use starcdn_cache::policy::{Cache, PolicyKind};
use starcdn_cache::sieve::SieveCache;
use starcdn_cache::simulate::replay;
use starcdn_cache::slru::SlruCache;
use starcdn_cache::tinylfu::TinyLfuCache;

/// Exact reference model shared by the LRU and FIFO shadow tests: a
/// recency/admission-ordered list, newest first.
struct ShadowList {
    capacity: u64,
    /// `(id, size)`, index 0 = newest.
    items: Vec<(u64, u64)>,
    /// Hits reorder (LRU) or don't (FIFO).
    reorder_on_hit: bool,
}

impl ShadowList {
    fn used(&self) -> u64 {
        self.items.iter().map(|&(_, s)| s).sum()
    }

    /// Returns true on hit, mirroring `Cache::access` semantics
    /// (hits ignore `size`; oversized misses are served uncached).
    fn access(&mut self, id: u64, size: u64) -> bool {
        if let Some(pos) = self.items.iter().position(|&(i, _)| i == id) {
            if self.reorder_on_hit {
                let e = self.items.remove(pos);
                self.items.insert(0, e);
            }
            return true;
        }
        if size <= self.capacity {
            while self.used() + size > self.capacity {
                self.items.pop();
            }
            self.items.insert(0, (id, size));
        }
        false
    }

    fn victim(&self) -> Option<u64> {
        self.items.last().map(|&(i, _)| i)
    }
}

proptest! {
    /// Every policy: bytes used never exceed capacity, `len`/`size_of`
    /// agree with `used_bytes`, and `contains` before an access predicts
    /// the hit/miss outcome.
    #[test]
    fn prop_capacity_and_membership_all_policies(
        ops in proptest::collection::vec((0u64..40, 1u64..60), 1..400),
    ) {
        for kind in PolicyKind::ALL {
            let mut c = kind.build(180);
            for &(id, size) in &ops {
                let had = c.contains(ObjectId(id));
                let out = c.access(ObjectId(id), size);
                prop_assert_eq!(out.is_hit(), had, "{}: hit disagrees with contains", kind.name());
                prop_assert!(
                    c.used_bytes() <= c.capacity_bytes(),
                    "{}: {} bytes in a {} byte cache",
                    kind.name(), c.used_bytes(), c.capacity_bytes()
                );
                let sum: u64 = (0..40u64).filter_map(|i| c.size_of(ObjectId(i))).sum();
                prop_assert_eq!(sum, c.used_bytes(), "{}: size_of sum diverged", kind.name());
                let count = (0..40u64).filter(|&i| c.contains(ObjectId(i))).count();
                prop_assert_eq!(count, c.len(), "{}: len diverged", kind.name());
            }
            c.clear();
            prop_assert!(c.is_empty() && c.used_bytes() == 0, "{}: clear left state", kind.name());
        }
    }

    /// Every policy through the replay harness: requests are conserved
    /// as hits + misses, byte totals add up, and hit bytes never exceed
    /// requested bytes.
    #[test]
    fn prop_hit_miss_conservation_all_policies(
        ops in proptest::collection::vec((0u64..30, 1u64..50), 1..300),
    ) {
        let total_bytes: u64 = ops.iter().map(|&(_, s)| s).sum();
        for kind in PolicyKind::ALL {
            let mut c = kind.build(200);
            let trace: Vec<(ObjectId, u64)> =
                ops.iter().map(|&(id, s)| (ObjectId(id), s)).collect();
            let stats = replay(c.as_mut(), trace);
            prop_assert_eq!(stats.requests, ops.len() as u64, "{}", kind.name());
            prop_assert_eq!(stats.hits + stats.misses(), stats.requests, "{}", kind.name());
            prop_assert_eq!(stats.bytes_requested, total_bytes, "{}", kind.name());
            prop_assert!(stats.bytes_hit <= stats.bytes_requested, "{}", kind.name());
            prop_assert!(stats.hits <= stats.requests, "{}", kind.name());
        }
    }

    /// LRU against an exact shadow model: membership, bytes, hit
    /// outcomes, and the eviction victim all match at every step.
    #[test]
    fn prop_lru_matches_exact_shadow_model(
        ops in proptest::collection::vec((0u64..25, 1u64..70), 1..400),
    ) {
        let mut c = LruCache::new(160);
        let mut shadow = ShadowList { capacity: 160, items: Vec::new(), reorder_on_hit: true };
        for (id, size) in ops {
            let hit = c.access(ObjectId(id), size);
            let shadow_hit = shadow.access(id, size);
            prop_assert_eq!(hit.is_hit(), shadow_hit);
            prop_assert_eq!(c.used_bytes(), shadow.used());
            prop_assert_eq!(c.victim(), shadow.victim().map(ObjectId), "victim order diverged");
            for i in 0..25u64 {
                let in_shadow = shadow.items.iter().any(|&(x, _)| x == i);
                prop_assert_eq!(c.contains(ObjectId(i)), in_shadow, "object {} membership", i);
            }
        }
    }

    /// FIFO against the same shadow model with reordering disabled:
    /// reuse must not save an object from admission-order eviction.
    #[test]
    fn prop_fifo_matches_exact_shadow_model(
        ops in proptest::collection::vec((0u64..25, 1u64..70), 1..400),
    ) {
        let mut c = starcdn_cache::fifo::FifoCache::new(160);
        let mut shadow = ShadowList { capacity: 160, items: Vec::new(), reorder_on_hit: false };
        for (id, size) in ops {
            let hit = c.access(ObjectId(id), size);
            let shadow_hit = shadow.access(id, size);
            prop_assert_eq!(hit.is_hit(), shadow_hit);
            prop_assert_eq!(c.used_bytes(), shadow.used());
            for i in 0..25u64 {
                let in_shadow = shadow.items.iter().any(|&(x, _)| x == i);
                prop_assert_eq!(c.contains(ObjectId(i)), in_shadow, "object {} membership", i);
            }
        }
    }

    /// SLRU: an admitted object starts on probation; any hit promotes it
    /// into the protected segment (sizes here are always below the
    /// protected share, so promotion can't bounce back).
    #[test]
    fn prop_slru_hits_promote_to_protected(
        ops in proptest::collection::vec((0u64..20, 1u64..40), 1..300),
    ) {
        let mut c = SlruCache::new(150);
        for (id, size) in ops {
            let out = c.access(ObjectId(id), size);
            if out.is_hit() {
                prop_assert_eq!(
                    c.segment_of(ObjectId(id)), Some("protected"),
                    "hit object {} not promoted", id
                );
            } else if c.contains(ObjectId(id)) {
                prop_assert_eq!(
                    c.segment_of(ObjectId(id)), Some("probation"),
                    "fresh admission {} skipped probation", id
                );
            }
            prop_assert!(c.used_bytes() <= c.capacity_bytes());
        }
    }

    /// SIEVE visited-bit semantics: a hit sets the bit; a fresh
    /// admission starts with it unset.
    #[test]
    fn prop_sieve_visited_bit_semantics(
        ops in proptest::collection::vec((0u64..20, 5u64..30), 1..300),
    ) {
        let mut c = SieveCache::new(120);
        for (id, size) in ops {
            let out = c.access(ObjectId(id), size);
            if out.is_hit() {
                prop_assert_eq!(c.is_visited(ObjectId(id)), Some(true));
            } else if c.contains(ObjectId(id)) {
                prop_assert_eq!(c.is_visited(ObjectId(id)), Some(false));
            }
        }
    }

    /// SIEVE with no reuse degenerates to FIFO: streaming distinct
    /// equal-sized objects leaves exactly the newest suffix cached.
    #[test]
    fn prop_sieve_without_reuse_evicts_oldest_first(
        n in 5u64..60,
        size in 10u64..40,
    ) {
        let mut c = SieveCache::new(200);
        for id in 0..n {
            c.access(ObjectId(id), size);
        }
        let held = 200 / size;
        let expect_cached = n.min(held);
        for id in 0..n {
            let expected = id >= n - expect_cached;
            prop_assert_eq!(
                c.contains(ObjectId(id)), expected,
                "object {} of {} (capacity {} objects)", id, n, held
            );
        }
    }

    /// TinyLFU sketch monotonicity: below the aging window, `k` extra
    /// accesses raise an object's estimate by exactly `k` (count-min
    /// collisions can inflate the baseline but never deflate it).
    #[test]
    fn prop_tinylfu_estimate_monotone_below_window(
        noise in proptest::collection::vec((0u64..200, 1u64..100), 0..600),
        candidate in 1000u64..2000,
        k in 1u32..32,
    ) {
        // capacity 65536 → sketch window 1024; keep total ops below it.
        let mut c = TinyLfuCache::new(65536);
        for &(id, size) in &noise {
            c.access(ObjectId(id), size);
        }
        let before = c.estimate(ObjectId(candidate));
        for _ in 0..k {
            c.access(ObjectId(candidate), 64);
        }
        let after = c.estimate(ObjectId(candidate));
        prop_assert_eq!(after, before + k, "estimate not monotone by exactly k");
    }

    /// TinyLFU admission: against a full cache of one-hit wonders, a
    /// repeatedly requested object must win admission once its frequency
    /// estimate beats the eviction victim's.
    #[test]
    fn prop_tinylfu_admits_frequent_over_one_hit_wonders(
        candidate in 5000u64..6000,
    ) {
        let mut c = TinyLfuCache::new(65536);
        // 64 distinct 1 KiB objects fill the cache exactly.
        for id in 0..64u64 {
            c.access(ObjectId(id), 1024);
        }
        prop_assert_eq!(c.used_bytes(), c.capacity_bytes());
        let mut admitted_after = None;
        for round in 1..=10u32 {
            c.access(ObjectId(candidate), 1024);
            if c.contains(ObjectId(candidate)) {
                admitted_after = Some(round);
                break;
            }
        }
        // Sketch collisions can hand the candidate a head start, so the
        // exact admission round varies — but a 10×-requested object must
        // always beat a once-requested victim eventually.
        prop_assert!(admitted_after.is_some(), "frequent object never admitted");
        prop_assert!(c.used_bytes() <= c.capacity_bytes());
    }

    /// MAD with no delay signal is exact LRU: same hits, same victims,
    /// same membership, and the GreedyDual floor never leaves zero.
    #[test]
    fn prop_mad_without_delay_signal_is_exact_lru(
        ops in proptest::collection::vec((0u64..25, 1u64..70), 1..400),
    ) {
        let mut c = MadCache::new(160);
        let mut shadow = ShadowList { capacity: 160, items: Vec::new(), reorder_on_hit: true };
        for (id, size) in ops {
            let hit = c.access(ObjectId(id), size);
            let shadow_hit = shadow.access(id, size);
            prop_assert_eq!(hit.is_hit(), shadow_hit);
            prop_assert_eq!(c.used_bytes(), shadow.used());
            prop_assert_eq!(c.victim(), shadow.victim().map(ObjectId), "victim order diverged");
            prop_assert_eq!(c.inflation(), 0, "cost-free evictions moved the floor");
            for i in 0..25u64 {
                let in_shadow = shadow.items.iter().any(|&(x, _)| x == i);
                prop_assert_eq!(c.contains(ObjectId(i)), in_shadow, "object {} membership", i);
            }
        }
    }

    /// MAD GreedyDual invariants under an arbitrary mix of accesses and
    /// delay charges: the victim is always a minimum-priority resident,
    /// every priority sits on or above the inflation floor, and the
    /// floor itself never moves backwards.
    #[test]
    fn prop_mad_victim_has_minimum_priority_above_floor(
        ops in proptest::collection::vec((0u64..30, 1u64..50, 0u64..9), 1..300),
    ) {
        let mut c = MadCache::new(150);
        let mut floor_before = 0u64;
        for (id, size, charge) in ops {
            c.access(ObjectId(id), size);
            if charge > 0 {
                c.record_fetch_delay(ObjectId(id), charge);
            }
            prop_assert!(c.inflation() >= floor_before, "inflation floor moved backwards");
            floor_before = c.inflation();
            if let Some(v) = c.victim() {
                let vp = c.priority_of(v).expect("victim must be cached");
                for i in 0..30u64 {
                    if let Some(p) = c.priority_of(ObjectId(i)) {
                        prop_assert!(
                            vp <= p,
                            "victim {:?} (priority {}) outranked by {} (priority {})", v, vp, i, p
                        );
                        prop_assert!(p >= c.inflation(), "live priority below the floor");
                    }
                }
            }
        }
    }

    /// MAD state roundtrip is exact under arbitrary delay charges, and
    /// the rebuilt cache replays the next access identically.
    #[test]
    fn prop_mad_state_roundtrip_exact(
        ops in proptest::collection::vec((0u64..20, 1u64..50, 0u64..6), 1..200),
        probe in 0u64..20,
    ) {
        let mut c = MadCache::new(150);
        for &(id, size, charge) in &ops {
            c.access(ObjectId(id), size);
            if charge > 0 {
                c.record_fetch_delay(ObjectId(id), charge);
            }
        }
        let state = c.to_state();
        let mut r = MadCache::from_state(&state).expect("own export must rebuild");
        prop_assert_eq!(r.to_state(), state);
        prop_assert_eq!(r.inflation(), c.inflation());
        let a = c.access(ObjectId(probe), 33);
        let b = r.access(ObjectId(probe), 33);
        prop_assert_eq!(a.is_hit(), b.is_hit(), "rebuilt cache diverged on the next access");
        prop_assert_eq!(c.victim(), r.victim());
    }

    /// LFU: the eviction victim is always a minimum-frequency resident.
    #[test]
    fn prop_lfu_victim_has_minimum_frequency(
        ops in proptest::collection::vec((0u64..30, 1u64..50), 1..300),
    ) {
        let mut c = LfuCache::new(150);
        for (id, size) in ops {
            c.access(ObjectId(id), size);
            if let Some(v) = c.victim() {
                let vf = c.frequency_of(v).expect("victim must be cached");
                for i in 0..30u64 {
                    if let Some(f) = c.frequency_of(ObjectId(i)) {
                        prop_assert!(
                            vf <= f,
                            "victim {:?} (freq {}) outranked by {} (freq {})", v, vf, i, f
                        );
                    }
                }
            }
        }
    }
}
