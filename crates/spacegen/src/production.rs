//! The production-workload model: SpaceGEN's stand-in for the Akamai
//! traces the paper collected from nine cities.
//!
//! Every StarCDN result rests on three workload properties (see §3.1):
//!
//! 1. **popularity skew** within a location (Zipf-like, per class);
//! 2. **cross-location overlap structure** — nearby same-language cities
//!    share ~55 % of objects but ~90 % of traffic; distant or
//!    different-language cities share little (Fig. 2, Table 2);
//! 3. **temporal structure** — diurnal demand, stable popularity over a
//!    few days.
//!
//! The model realizes all three: a global Zipf catalog with lognormal
//! sizes; each object has a *home* location (weighted by local demand)
//! and is *available* elsewhere with probability decaying in distance
//! and language mismatch, while head content is shared (nearly)
//! everywhere — which is exactly what separates traffic overlap from
//! object overlap; per-location popularity adds lognormal noise and a
//! home boost; request times follow a diurnal profile in local time.

use crate::classes::ClassParams;
use crate::trace::{Location, LocationId, Request, Trace};
use rand::prelude::*;
use rand_distr::{Distribution, LogNormal};
use starcdn_cache::object::ObjectId;
use starcdn_orbit::time::{SimDuration, SimTime};

/// Metadata of one catalog object.
#[derive(Debug, Clone)]
pub struct CatalogObject {
    pub id: ObjectId,
    pub size: u64,
    pub home: LocationId,
    /// Global popularity weight (unnormalized Zipf).
    pub global_weight: f64,
}

/// The calibrated multi-location workload model.
#[derive(Debug)]
pub struct ProductionModel {
    pub locations: Vec<Location>,
    pub params: ClassParams,
    pub catalog: Vec<CatalogObject>,
    /// Per location: (object index, weight) for available objects, plus a
    /// prefix-sum CDF aligned with it.
    per_location: Vec<LocationCatalog>,
}

#[derive(Debug)]
struct LocationCatalog {
    object_idx: Vec<u32>,
    cdf: Vec<f64>,
}

impl ProductionModel {
    /// Build the model for `params` over `locations` (deterministic in
    /// `seed`).
    pub fn build(params: ClassParams, locations: &[Location], seed: u64) -> Self {
        assert!(!locations.is_empty(), "need at least one location");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = params.catalog_size;

        // Demand factor per location: the US cities carry the most
        // Starlink users today (§3.1.1), so weight homes toward them.
        let demand: Vec<f64> =
            locations.iter().map(|l| if l.language == "en" { 1.5 } else { 1.0 }).collect();
        let demand_total: f64 = demand.iter().sum();

        let size_dist = LogNormal::new((params.size_median_bytes as f64).ln(), params.size_sigma)
            .expect("valid lognormal");

        let mut catalog = Vec::with_capacity(n);
        for i in 0..n {
            let rank = i + 1;
            let global_weight = 1.0 / (rank as f64).powf(params.zipf_alpha);
            let size = (size_dist.sample(&mut rng) as u64).clamp(1, params.size_cap_bytes);
            // Home by demand share.
            let mut pick = rng.gen::<f64>() * demand_total;
            let mut home = 0usize;
            for (j, d) in demand.iter().enumerate() {
                if pick < *d {
                    home = j;
                    break;
                }
                pick -= d;
            }
            catalog.push(CatalogObject {
                id: ObjectId(i as u64),
                size,
                home: LocationId(home as u16),
                global_weight,
            });
        }

        // Availability and per-location weights.
        let knee = ((n as f64) * params.popular_knee_frac).max(1.0);
        let noise = LogNormal::new(0.0, params.per_location_noise_sigma).expect("valid lognormal");
        let mut per_location = Vec::with_capacity(locations.len());
        for loc in locations {
            let mut object_idx = Vec::new();
            let mut weights = Vec::new();
            for (i, obj) in catalog.iter().enumerate() {
                let home_loc = &locations[obj.home.0 as usize];
                let available = if obj.home == loc.id {
                    true
                } else {
                    let d = loc.distance_km(home_loc);
                    let lang_share = if loc.language == home_loc.language {
                        params.same_language_share
                    } else {
                        params.cross_language_share
                    };
                    let geo = (-d / params.distance_scale_km).exp();
                    // Head content travels further than the tail, but
                    // *both* decay with distance — even popular content is
                    // regional (Fig. 2: only ~25 % of London's traffic is
                    // also present in New York).
                    let pop_boost = 1.0 / (1.0 + i as f64 / knee);
                    let head = if loc.language == home_loc.language {
                        params.head_share_same
                    } else {
                        params.head_share_cross
                    };
                    let p = (geo * (lang_share + pop_boost * head)).min(1.0);
                    rng.gen::<f64>() < p
                };
                if available {
                    let mut w = obj.global_weight * noise.sample(&mut rng);
                    if obj.home == loc.id {
                        w *= params.home_boost;
                    }
                    object_idx.push(i as u32);
                    weights.push(w);
                }
            }
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            let cdf: Vec<f64> = weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect();
            per_location.push(LocationCatalog { object_idx, cdf });
        }

        ProductionModel { locations: locations.to_vec(), params, catalog, per_location }
    }

    /// Number of objects available at a location.
    pub fn available_at(&self, loc: LocationId) -> usize {
        self.per_location[loc.0 as usize].object_idx.len()
    }

    /// Sample one object for a request from `loc`.
    pub fn sample_object(&self, loc: LocationId, rng: &mut impl Rng) -> &CatalogObject {
        let lc = &self.per_location[loc.0 as usize];
        let u: f64 = rng.gen();
        let k = lc.cdf.partition_point(|&c| c < u).min(lc.cdf.len() - 1);
        &self.catalog[lc.object_idx[k] as usize]
    }

    /// Diurnal rate multiplier at simulation time `t` for a location
    /// (peak at 20:00 local time, trough at 08:00).
    pub fn diurnal_multiplier(&self, loc: LocationId, t: SimTime) -> f64 {
        let lon = self.locations[loc.0 as usize].lon_deg;
        let local_hours = (t.as_secs_f64() / 3600.0 + lon / 15.0).rem_euclid(24.0);
        let phase = (local_hours - 20.0) / 24.0 * std::f64::consts::TAU;
        1.0 + self.params.diurnal_amplitude * phase.cos()
    }

    /// Generate the production trace over `duration` (deterministic in
    /// `seed`). Request times are Poisson within hourly buckets whose
    /// rates follow the diurnal profile.
    pub fn generate_trace(&self, duration: SimDuration, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5face_97ace);
        let mut requests = Vec::new();
        let total_secs = duration.as_secs_f64();
        let bucket_secs = 3600.0_f64.min(total_secs.max(1.0));
        let n_buckets = (total_secs / bucket_secs).ceil() as u64;

        for loc in 0..self.locations.len() {
            let loc_id = LocationId(loc as u16);
            for b in 0..n_buckets {
                let t0 = b as f64 * bucket_secs;
                let span = bucket_secs.min(total_secs - t0);
                if span <= 0.0 {
                    break;
                }
                let mid = SimTime::from_millis(((t0 + span / 2.0) * 1000.0) as u64);
                let expected =
                    self.params.base_rate_per_loc_hz * self.diurnal_multiplier(loc_id, mid) * span;
                let count = poisson_knuth(expected, &mut rng);
                for _ in 0..count {
                    let t = t0 + rng.gen::<f64>() * span;
                    let obj = self.sample_object(loc_id, &mut rng);
                    requests.push(Request {
                        time: SimTime::from_millis((t * 1000.0) as u64),
                        object: obj.id,
                        size: obj.size,
                        location: loc_id,
                    });
                }
            }
        }
        Trace::new(requests)
    }

    /// Size of an object by id (panics on unknown ids).
    pub fn size_of(&self, id: ObjectId) -> u64 {
        self.catalog[id.0 as usize].size
    }
}

/// Generate a mixed-class trace: each traffic class keeps its own model
/// and parameters, object ids are namespaced per class (high bits), and
/// the per-class traces merge into one time-ordered stream — the shape
/// of traffic a general-purpose CDN like Akamai actually serves (§2.2).
///
/// Returns the merged trace plus the per-class models (for size lookups
/// and analysis).
pub fn mixed_trace(
    classes: &[crate::classes::ClassParams],
    locations: &[Location],
    duration: SimDuration,
    seed: u64,
) -> (Trace, Vec<ProductionModel>) {
    assert!(classes.len() <= 16, "class namespace uses 4 id bits");
    let mut models = Vec::with_capacity(classes.len());
    let mut merged = Vec::new();
    for (ci, params) in classes.iter().enumerate() {
        let model = ProductionModel::build(*params, locations, seed ^ ((ci as u64) << 40));
        let trace = model.generate_trace(duration, seed ^ ((ci as u64) << 41));
        let namespace = (ci as u64) << 60;
        merged.extend(trace.requests.into_iter().map(|mut r| {
            r.object = ObjectId(namespace | r.object.0);
            r
        }));
        models.push(model);
    }
    (Trace::new(merged), models)
}

/// Poisson sampling; Knuth's method for small λ, normal approximation for
/// large λ (λ > 64), which is plenty for hourly request buckets.
fn poisson_knuth(lambda: f64, rng: &mut impl Rng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        let z: f64 = rand_distr::StandardNormal.sample(rng);
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::TrafficClass;

    fn small_model() -> ProductionModel {
        let params = TrafficClass::Video.params().scaled(0.05); // 3000 objects
        ProductionModel::build(params, &Location::akamai_nine(), 42)
    }

    #[test]
    fn build_is_deterministic() {
        let params = TrafficClass::Video.params().scaled(0.02);
        let locs = Location::akamai_nine();
        let a = ProductionModel::build(params, &locs, 7);
        let b = ProductionModel::build(params, &locs, 7);
        assert_eq!(a.catalog.len(), b.catalog.len());
        for (x, y) in a.catalog.iter().zip(&b.catalog) {
            assert_eq!(x.size, y.size);
            assert_eq!(x.home, y.home);
        }
        let ta = a.generate_trace(SimDuration::from_secs(600), 1);
        let tb = b.generate_trace(SimDuration::from_secs(600), 1);
        assert_eq!(ta, tb);
    }

    #[test]
    fn home_objects_always_available() {
        let m = small_model();
        for loc in 0..9u16 {
            let lc = &m.per_location[loc as usize];
            let avail: std::collections::HashSet<u32> = lc.object_idx.iter().copied().collect();
            for (i, obj) in m.catalog.iter().enumerate() {
                if obj.home == LocationId(loc) {
                    assert!(avail.contains(&(i as u32)), "home object {i} missing at {loc}");
                }
            }
        }
    }

    #[test]
    fn head_content_travels_further_than_tail() {
        // Even head content is regional (Fig. 2), but it reaches more
        // locations than the tail does.
        let m = small_model();
        let spread = |range: std::ops::Range<u32>| {
            let mut total = 0usize;
            for i in range.clone() {
                total += m
                    .per_location
                    .iter()
                    .filter(|lc| lc.object_idx.binary_search(&i).is_ok())
                    .count();
            }
            total as f64 / range.len() as f64
        };
        let head = spread(0..50);
        let n = m.catalog.len() as u32;
        let tail = spread((n - 500)..n);
        assert!(head > tail + 0.5, "head spread {head:.2} vs tail {tail:.2}");
        assert!(head >= 2.0, "head objects should reach multiple locations: {head:.2}");
    }

    #[test]
    fn tail_content_is_mostly_local() {
        let m = small_model();
        let n = m.catalog.len();
        // Average spread of the bottom half of the catalog should be low.
        let mut total = 0usize;
        let count = 500.min(n / 2);
        for i in (n - count)..n {
            total += m
                .per_location
                .iter()
                .filter(|lc| lc.object_idx.binary_search(&(i as u32)).is_ok())
                .count();
        }
        let avg = total as f64 / count as f64;
        assert!(avg < 5.0, "tail objects average {avg} locations");
    }

    #[test]
    fn sample_object_prefers_head() {
        let m = small_model();
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0usize;
        const N: usize = 5000;
        for _ in 0..N {
            let o = m.sample_object(LocationId(4), &mut rng);
            if o.id.0 < (m.catalog.len() / 20) as u64 {
                head += 1;
            }
        }
        // With alpha ≈ 1.05, the top 5% of objects should carry well over
        // half the requests.
        assert!(head as f64 / N as f64 > 0.5, "head share {}", head as f64 / N as f64);
    }

    #[test]
    fn diurnal_multiplier_cycles() {
        let m = small_model();
        let loc = LocationId(4); // New York, lon ≈ -74 → local ≈ UTC-5
        let mut mults = Vec::new();
        for h in 0..24u64 {
            mults.push(m.diurnal_multiplier(loc, SimTime::from_hours(h)));
        }
        let max = mults.iter().cloned().fold(f64::MIN, f64::max);
        let min = mults.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1.2 && min < 0.8, "diurnal range [{min}, {max}]");
        // 24h periodicity.
        let again = m.diurnal_multiplier(loc, SimTime::from_hours(24));
        assert!((again - mults[0]).abs() < 1e-9);
    }

    #[test]
    fn trace_covers_all_locations_and_respects_duration() {
        let m = small_model();
        let dur = SimDuration::from_secs(2 * 3600);
        let trace = m.generate_trace(dur, 9);
        assert!(!trace.is_empty());
        assert!(trace.end_time().as_millis() <= dur.as_millis());
        let by_loc = trace.split_by_location(9);
        for (i, t) in by_loc.iter().enumerate() {
            assert!(!t.is_empty(), "location {i} got no requests");
        }
        // Total volume within 3x of expectation (diurnal + Poisson noise).
        let expected = m.params.base_rate_per_loc_hz * 7200.0 * 9.0;
        let ratio = trace.len() as f64 / expected;
        assert!((0.5..2.0).contains(&ratio), "request count off: ratio {ratio}");
    }

    #[test]
    fn sizes_within_cap() {
        let m = small_model();
        for o in &m.catalog {
            assert!(o.size >= 1 && o.size <= m.params.size_cap_bytes);
        }
        assert_eq!(m.size_of(ObjectId(5)), m.catalog[5].size);
    }

    #[test]
    fn mixed_trace_namespaces_and_merges() {
        let locs = Location::akamai_nine();
        let classes =
            [TrafficClass::Video.params().scaled(0.02), TrafficClass::Web.params().scaled(0.02)];
        let (trace, models) = mixed_trace(&classes, &locs, SimDuration::from_hours(1), 5);
        assert_eq!(models.len(), 2);
        assert!(!trace.is_empty());
        // Time-ordered merge.
        for w in trace.requests.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Namespaces keep the classes disjoint; both present.
        let ns: std::collections::HashSet<u64> =
            trace.requests.iter().map(|r| r.object.0 >> 60).collect();
        assert_eq!(ns.len(), 2, "both class namespaces present: {ns:?}");
        // Web (higher rate, smaller objects) should dominate request count.
        let web_reqs = trace.requests.iter().filter(|r| r.object.0 >> 60 == 1).count();
        assert!(web_reqs * 2 > trace.len(), "web should carry most requests");
    }

    #[test]
    #[should_panic(expected = "class namespace")]
    fn mixed_trace_rejects_too_many_classes() {
        let locs = Location::akamai_nine();
        let classes = vec![TrafficClass::Video.params().scaled(0.01); 17];
        mixed_trace(&classes, &locs, SimDuration::from_secs(10), 1);
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5f64, 5.0, 80.0] {
            let n = 3000;
            let total: u64 = (0..n).map(|_| poisson_knuth(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.15, "λ={lambda} mean={mean}");
        }
        assert_eq!(poisson_knuth(0.0, &mut rng), 0);
    }
}
