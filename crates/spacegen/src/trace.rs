//! Trace records and the nine-city location set.

use rand::prelude::*;
use serde::{Deserialize, Serialize};
use starcdn_cache::object::ObjectId;
use starcdn_constellation::schedule::DemandSchedule;
use starcdn_orbit::coords::Geodetic;
use starcdn_orbit::time::SimTime;

/// Identifier of a trace location (index into the location table).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct LocationId(pub u16);

/// A geographic trace location (city) with its language group, which
/// drives the cross-location content-overlap model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Location {
    pub id: LocationId,
    pub name: String,
    pub lat_deg: f64,
    pub lon_deg: f64,
    /// Language group: locations sharing a language share far more
    /// content (Table 2's diagonal-block structure).
    pub language: String,
}

impl Location {
    /// Position on the globe.
    pub fn geodetic(&self) -> Geodetic {
        Geodetic::from_degrees(self.lat_deg, self.lon_deg, 0.0)
    }

    /// Great-circle distance to another location, km.
    pub fn distance_km(&self, other: &Location) -> f64 {
        self.geodetic().haversine_km(&other.geodetic())
    }

    /// The paper's nine Akamai trace cities (§3.1.1): Mexico City,
    /// Dallas, Atlanta, Washington D.C., New York City, London,
    /// Frankfurt, Vienna, and Istanbul.
    pub fn akamai_nine() -> Vec<Location> {
        let spec: [(&str, f64, f64, &str); 9] = [
            ("Mexico City", 19.4326, -99.1332, "es"),
            ("Dallas", 32.7767, -96.7970, "en"),
            ("Atlanta", 33.7490, -84.3880, "en"),
            ("Washington DC", 38.9072, -77.0369, "en"),
            ("New York", 40.7128, -74.0060, "en"),
            ("London", 51.5074, -0.1278, "en"),
            ("Frankfurt", 50.1109, 8.6821, "de"),
            ("Vienna", 48.2082, 16.3738, "de"),
            ("Istanbul", 41.0082, 28.9784, "tr"),
        ];
        spec.iter()
            .enumerate()
            .map(|(i, &(name, lat, lon, lang))| Location {
                id: LocationId(i as u16),
                name: name.to_owned(),
                lat_deg: lat,
                lon_deg: lon,
                language: lang.to_owned(),
            })
            .collect()
    }

    /// Find a location by name in a table.
    pub fn by_name<'a>(table: &'a [Location], name: &str) -> Option<&'a Location> {
        table.iter().find(|l| l.name == name)
    }
}

/// One content request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub time: SimTime,
    pub object: ObjectId,
    pub size: u64,
    pub location: LocationId,
}

/// A trace: requests sorted by time, spanning one or more locations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub requests: Vec<Request>,
}

impl Trace {
    /// Wrap a request vector, sorting by time (stable, so equal-time
    /// requests keep their generation order).
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.time);
        Trace { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total bytes requested.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Unique objects and their total unique bytes.
    pub fn unique_objects(&self) -> (usize, u64) {
        let mut seen = std::collections::HashMap::new();
        for r in &self.requests {
            seen.entry(r.object).or_insert(r.size);
        }
        (seen.len(), seen.values().sum())
    }

    /// End time of the trace (time of the last request).
    pub fn end_time(&self) -> SimTime {
        self.requests.last().map(|r| r.time).unwrap_or(SimTime::ZERO)
    }

    /// Split into per-location traces, preserving order. Returns
    /// `locations`-indexed vector (missing locations yield empty traces).
    pub fn split_by_location(&self, num_locations: usize) -> Vec<Trace> {
        let mut out = vec![Trace::default(); num_locations];
        for r in &self.requests {
            out[r.location.0 as usize].requests.push(*r);
        }
        out
    }

    /// Merge several traces into one time-sorted trace.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut all = Vec::new();
        for t in traces {
            all.extend(t.requests);
        }
        Trace::new(all)
    }

    /// The accesses as `(object, size)` pairs for the cache replay harness.
    pub fn accesses(&self) -> Vec<(ObjectId, u64)> {
        self.requests.iter().map(|r| (r.object, r.size)).collect()
    }

    /// Amplify the trace with a flash-crowd [`DemandSchedule`]: each
    /// request whose location sits under an active surge envelope is
    /// replicated so the local request rate scales by the envelope's
    /// multiplier (fractional parts resolved by a seeded coin).
    ///
    /// The overlay runs *before* the access log is built, so the engine
    /// and the parallel replayer see the same amplified stream and
    /// bit-for-bit parity is preserved by construction. Clones keep the
    /// original timestamp; [`Trace::new`]'s stable sort keeps them
    /// adjacent to their source request.
    pub fn with_demand_surges(&self, surges: &DemandSchedule, seed: u64) -> Trace {
        if surges.is_empty() {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A5_4C20_0B5E_71E5);
        let mut out = Vec::with_capacity(self.requests.len());
        for r in &self.requests {
            out.push(*r);
            let extra = surges.multiplier_at(r.location.0, r.time.as_secs()) - 1.0;
            if extra <= 0.0 {
                continue;
            }
            let copies = extra.floor() as u64 + u64::from(rng.gen::<f64>() < extra.fract());
            for _ in 0..copies {
                out.push(*r);
            }
        }
        Trace::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, obj: u64, size: u64, loc: u16) -> Request {
        Request {
            time: SimTime::from_secs(t),
            object: ObjectId(obj),
            size,
            location: LocationId(loc),
        }
    }

    #[test]
    fn akamai_nine_roster() {
        let locs = Location::akamai_nine();
        assert_eq!(locs.len(), 9);
        assert_eq!(locs[4].name, "New York");
        assert_eq!(locs[4].language, "en");
        assert_eq!(Location::by_name(&locs, "Istanbul").unwrap().language, "tr");
        assert!(Location::by_name(&locs, "Tokyo").is_none());
        // Ids are dense and match indices.
        for (i, l) in locs.iter().enumerate() {
            assert_eq!(l.id, LocationId(i as u16));
        }
    }

    #[test]
    fn nyc_dc_are_close_nyc_istanbul_far() {
        // Fig. 2's geography: DC is < 3000 km from NY, Istanbul is > 3000.
        let locs = Location::akamai_nine();
        let ny = Location::by_name(&locs, "New York").unwrap();
        let dc = Location::by_name(&locs, "Washington DC").unwrap();
        let ist = Location::by_name(&locs, "Istanbul").unwrap();
        assert!(ny.distance_km(dc) < 400.0);
        assert!(ny.distance_km(ist) > 8000.0);
    }

    #[test]
    fn trace_sorts_by_time() {
        let t = Trace::new(vec![req(5, 1, 10, 0), req(1, 2, 20, 0), req(3, 3, 30, 1)]);
        let times: Vec<u64> = t.requests.iter().map(|r| r.time.as_secs()).collect();
        assert_eq!(times, vec![1, 3, 5]);
        assert_eq!(t.end_time(), SimTime::from_secs(5));
    }

    #[test]
    fn totals_and_uniques() {
        let t = Trace::new(vec![req(0, 1, 10, 0), req(1, 1, 10, 0), req(2, 2, 30, 1)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 50);
        assert_eq!(t.unique_objects(), (2, 40));
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let t = Trace::new(vec![req(0, 1, 10, 0), req(1, 2, 20, 1), req(2, 3, 30, 0)]);
        let parts = t.split_by_location(3);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 1);
        assert!(parts[2].is_empty());
        let merged = Trace::merge(parts);
        assert_eq!(merged, t);
    }

    #[test]
    fn accesses_projection() {
        let t = Trace::new(vec![req(0, 7, 11, 0)]);
        assert_eq!(t.accesses(), vec![(ObjectId(7), 11)]);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.end_time(), SimTime::ZERO);
        assert_eq!(t.unique_objects(), (0, 0));
    }

    fn surge(loc: u16, onset: u64, hold: u64, peak: f64) -> DemandSurge {
        DemandSurge {
            location: loc,
            onset_secs: onset,
            ramp_secs: 0,
            hold_secs: hold,
            decay_secs: 0,
            peak_multiplier: peak,
        }
    }

    use starcdn_constellation::schedule::DemandSurge;

    #[test]
    fn demand_surge_amplifies_only_the_hot_location() {
        // 100 requests per location; a 3× plateau over location 1 only.
        let base = Trace::new((0..200).map(|i| req(i % 100, i, 10, (i % 2) as u16)).collect());
        let sched = DemandSchedule::from_surges([surge(1, 0, 100, 3.0)]);
        let amp = base.with_demand_surges(&sched, 7);
        let counts = amp.split_by_location(2);
        assert_eq!(counts[0].len(), 100, "cold location untouched");
        assert_eq!(counts[1].len(), 300, "integer multiplier is exact");
        // Amplification clones requests: no new objects, same end time.
        assert_eq!(amp.unique_objects(), base.unique_objects());
        assert_eq!(amp.end_time(), base.end_time());
        // Sorted-by-time invariant survives amplification.
        for w in amp.requests.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn demand_surge_fractional_multiplier_is_seed_deterministic() {
        let base = Trace::new((0..1000).map(|i| req(i, i, 1, 0)).collect());
        let sched = DemandSchedule::from_surges([surge(0, 0, 1000, 2.5)]);
        let a = base.with_demand_surges(&sched, 42);
        let b = base.with_demand_surges(&sched, 42);
        assert_eq!(a, b, "same seed, same amplified trace");
        // ~2.5× in expectation: 1 clone always, a second one half the time.
        assert!(a.len() > 2200 && a.len() < 2800, "got {}", a.len());
    }

    #[test]
    fn empty_demand_schedule_is_identity() {
        let base = Trace::new(vec![req(0, 1, 10, 0), req(5, 2, 20, 1)]);
        assert_eq!(base.with_demand_surges(&DemandSchedule::empty(), 3), base);
    }
}
