//! Trace and model file I/O.
//!
//! The paper publishes SpaceGEN's traffic models and generated traces
//! for download; this module provides the equivalent surface:
//!
//! * traces as CSV (`time_ms,object,size,location` — one request per
//!   line, the format CDN cache research tools commonly exchange);
//! * traces as a compact binary format (fixed 26-byte records) for the
//!   multi-gigabyte synthetic traces;
//! * pFD + GPD model bundles as JSON.

use crate::fd::FootprintDescriptor;
use crate::gpd::GlobalPopularity;
use crate::trace::{LocationId, Request, Trace};
use serde::{Deserialize, Serialize};
use starcdn_cache::object::ObjectId;
use starcdn_io::{Io, ReadAdapter, RealIo, WriteAdapter};
use starcdn_orbit::time::SimTime;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from trace/model I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying stream I/O failure.
    Io(io::Error),
    /// A filesystem operation failed, with operation + path context.
    File(starcdn_io::IoError),
    /// A CSV line did not parse.
    BadCsvLine { line: usize, content: String },
    /// Binary stream truncated mid-record.
    TruncatedRecord,
    /// Bad magic/version header in a binary trace.
    BadHeader,
    /// Model JSON failed to parse.
    BadModel(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::File(e) => write!(f, "file error: {e}"),
            IoError::BadCsvLine { line, content } => {
                write!(f, "malformed CSV at line {line}: `{content}`")
            }
            IoError::TruncatedRecord => write!(f, "binary trace truncated mid-record"),
            IoError::BadHeader => write!(f, "not a spacegen binary trace (bad header)"),
            IoError::BadModel(e) => write!(f, "model JSON error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::File(e) => Some(e),
            IoError::BadModel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<starcdn_io::IoError> for IoError {
    fn from(e: starcdn_io::IoError) -> Self {
        IoError::File(e)
    }
}

/// Decode a little-endian `u64` from a field slice, reporting
/// [`IoError::TruncatedRecord`] instead of panicking when the slice has
/// the wrong width. Shared by every fixed-record codec in the pipeline.
pub fn le_u64(b: &[u8]) -> Result<u64, IoError> {
    <[u8; 8]>::try_from(b).map(u64::from_le_bytes).map_err(|_| IoError::TruncatedRecord)
}

/// Decode a little-endian `u16` field; see [`le_u64`].
pub fn le_u16(b: &[u8]) -> Result<u16, IoError> {
    <[u8; 2]>::try_from(b).map(u16::from_le_bytes).map_err(|_| IoError::TruncatedRecord)
}

/// Write a trace as CSV with a header line.
pub fn write_csv(trace: &Trace, w: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "time_ms,object,size,location")?;
    for r in &trace.requests {
        writeln!(w, "{},{},{},{}", r.time.as_millis(), r.object.0, r.size, r.location.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a CSV trace (header line optional).
pub fn read_csv(r: impl Read) -> Result<Trace, IoError> {
    let reader = BufReader::new(r);
    let mut requests = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (idx == 0 && trimmed.starts_with("time_ms")) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse = || IoError::BadCsvLine { line: idx + 1, content: line.clone() };
        let time: u64 = parts.next().and_then(|s| s.trim().parse().ok()).ok_or_else(parse)?;
        let object: u64 = parts.next().and_then(|s| s.trim().parse().ok()).ok_or_else(parse)?;
        let size: u64 = parts.next().and_then(|s| s.trim().parse().ok()).ok_or_else(parse)?;
        let loc: u16 = parts.next().and_then(|s| s.trim().parse().ok()).ok_or_else(parse)?;
        requests.push(Request {
            time: SimTime::from_millis(time),
            object: ObjectId(object),
            size,
            location: LocationId(loc),
        });
    }
    Ok(Trace::new(requests))
}

const BIN_MAGIC: &[u8; 8] = b"SPACEGN1";

/// Write a trace in the compact binary format: an 8-byte magic header
/// followed by fixed 26-byte little-endian records
/// `(time_ms: u64, object: u64, size: u64, location: u16)`.
pub fn write_binary(trace: &Trace, w: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    w.write_all(BIN_MAGIC)?;
    for r in &trace.requests {
        w.write_all(&r.time.as_millis().to_le_bytes())?;
        w.write_all(&r.object.0.to_le_bytes())?;
        w.write_all(&r.size.to_le_bytes())?;
        w.write_all(&r.location.0.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Fill `buf` with the next fixed-size record from `r`.
///
/// Returns `Ok(true)` when a full record was read, `Ok(false)` on a
/// clean EOF at a record boundary, and [`IoError::TruncatedRecord`] when
/// the stream ends mid-record — a partial trailing record is corruption,
/// never silently dropped. Shared by every fixed-record binary codec in
/// the pipeline (spacegen traces, access logs, columnar access logs).
pub fn read_fixed_record(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, IoError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(IoError::Io(e)),
        }
    }
    if filled == 0 {
        return Ok(false);
    }
    if filled < buf.len() {
        return Err(IoError::TruncatedRecord);
    }
    Ok(true)
}

/// Read a binary trace written by [`write_binary`].
pub fn read_binary(r: impl Read) -> Result<Trace, IoError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|_| IoError::BadHeader)?;
    if &magic != BIN_MAGIC {
        return Err(IoError::BadHeader);
    }
    let mut requests = Vec::new();
    let mut rec = [0u8; 26];
    while read_fixed_record(&mut r, &mut rec)? {
        // Field widths are fixed by the splits over the 26-byte record;
        // the decoders still return typed errors rather than panicking
        // if a width is ever wrong.
        let (time_b, rest) = rec.split_at(8);
        let (object_b, rest) = rest.split_at(8);
        let (size_b, loc_b) = rest.split_at(8);
        let time = le_u64(time_b)?;
        let object = le_u64(object_b)?;
        let size = le_u64(size_b)?;
        let loc = le_u16(loc_b)?;
        requests.push(Request {
            time: SimTime::from_millis(time),
            object: ObjectId(object),
            size,
            location: LocationId(loc),
        });
    }
    Ok(Trace::new(requests))
}

/// Write a trace as CSV to `path` (created or truncated).
pub fn write_csv_path(trace: &Trace, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_csv_path_io(trace, path.as_ref(), &RealIo)
}

/// [`write_csv_path`] over an explicit [`Io`].
pub fn write_csv_path_io(trace: &Trace, path: &Path, io: &dyn Io) -> Result<(), IoError> {
    let mut f = io.create(path)?;
    write_csv(trace, WriteAdapter(&mut *f))
}

/// Read a CSV trace from `path`.
pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Trace, IoError> {
    read_csv_path_io(path.as_ref(), &RealIo)
}

/// [`read_csv_path`] over an explicit [`Io`].
pub fn read_csv_path_io(path: &Path, io: &dyn Io) -> Result<Trace, IoError> {
    let mut f = io.open(path)?;
    read_csv(ReadAdapter(&mut *f))
}

/// Write a binary trace to `path` (created or truncated).
pub fn write_binary_path(trace: &Trace, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_binary_path_io(trace, path.as_ref(), &RealIo)
}

/// [`write_binary_path`] over an explicit [`Io`].
pub fn write_binary_path_io(trace: &Trace, path: &Path, io: &dyn Io) -> Result<(), IoError> {
    let mut f = io.create(path)?;
    write_binary(trace, WriteAdapter(&mut *f))
}

/// Read a binary trace from `path`.
pub fn read_binary_path(path: impl AsRef<Path>) -> Result<Trace, IoError> {
    read_binary_path_io(path.as_ref(), &RealIo)
}

/// [`read_binary_path`] over an explicit [`Io`].
pub fn read_binary_path_io(path: &Path, io: &dyn Io) -> Result<Trace, IoError> {
    let mut f = io.open(path)?;
    read_binary(ReadAdapter(&mut *f))
}

/// A serializable bundle of the traffic models SpaceGEN needs: one pFD
/// per location plus the GPD — the artifact the paper publishes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    pub pfds: Vec<FootprintDescriptor>,
    pub gpd: GlobalPopularity,
}

impl ModelBundle {
    /// Extract the bundle from a multi-location production trace.
    pub fn from_trace(trace: &Trace, num_locations: usize, seed: u64) -> Self {
        let per_loc = trace.split_by_location(num_locations);
        ModelBundle {
            pfds: per_loc
                .iter()
                .enumerate()
                .map(|(i, t)| FootprintDescriptor::from_trace(t, seed ^ (i as u64) << 32))
                .collect(),
            gpd: GlobalPopularity::from_trace(trace, num_locations),
        }
    }

    /// Serialize as JSON.
    pub fn write_json(&self, w: impl Write) -> Result<(), IoError> {
        serde_json::to_writer(BufWriter::new(w), self).map_err(IoError::BadModel)
    }

    /// Deserialize from JSON.
    pub fn read_json(r: impl Read) -> Result<Self, IoError> {
        serde_json::from_reader(BufReader::new(r)).map_err(IoError::BadModel)
    }

    /// Serialize as JSON to `path` (created or truncated).
    pub fn write_json_path(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        self.write_json_path_io(path.as_ref(), &RealIo)
    }

    /// [`ModelBundle::write_json_path`] over an explicit [`Io`].
    pub fn write_json_path_io(&self, path: &Path, io: &dyn Io) -> Result<(), IoError> {
        let mut f = io.create(path)?;
        self.write_json(WriteAdapter(&mut *f))
    }

    /// Deserialize from the JSON file at `path`.
    pub fn read_json_path(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Self::read_json_path_io(path.as_ref(), &RealIo)
    }

    /// [`ModelBundle::read_json_path`] over an explicit [`Io`].
    pub fn read_json_path_io(path: &Path, io: &dyn Io) -> Result<Self, IoError> {
        let mut f = io.open(path)?;
        Self::read_json(ReadAdapter(&mut *f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(vec![
            Request {
                time: SimTime::from_millis(10),
                object: ObjectId(1),
                size: 100,
                location: LocationId(0),
            },
            Request {
                time: SimTime::from_millis(20),
                object: ObjectId(2),
                size: 2048,
                location: LocationId(3),
            },
            Request {
                time: SimTime::from_millis(20),
                object: ObjectId(1),
                size: 100,
                location: LocationId(8),
            },
        ])
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("time_ms,object,size,location\n"));
        assert_eq!(text.lines().count(), 4);
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_without_header_and_blank_lines() {
        let body = "\n10,1,100,0\n\n20,2,2048,3\n";
        let t = read_csv(body.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[1].size, 2048);
    }

    #[test]
    fn csv_malformed_reports_line() {
        let body = "time_ms,object,size,location\n10,1,100,0\nnot,a,line\n";
        match read_csv(body.as_bytes()) {
            Err(IoError::BadCsvLine { line: 3, .. }) => {}
            other => panic!("expected BadCsvLine(3), got {other:?}"),
        }
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 26 * 3);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_detects_truncated_record() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 5); // chop mid-record
        match read_binary(buf.as_slice()) {
            Err(IoError::TruncatedRecord) => {}
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTATRCE".to_vec();
        assert!(matches!(read_binary(buf.as_slice()), Err(IoError::BadHeader)));
    }

    #[test]
    fn binary_empty_trace() {
        let mut buf = Vec::new();
        write_binary(&Trace::default(), &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn model_bundle_roundtrip() {
        let t = sample_trace();
        let bundle = ModelBundle::from_trace(&t, 9, 1);
        assert_eq!(bundle.pfds.len(), 9);
        assert_eq!(bundle.gpd.len(), 2);
        let mut buf = Vec::new();
        bundle.write_json(&mut buf).unwrap();
        let back = ModelBundle::read_json(buf.as_slice()).unwrap();
        assert_eq!(back.pfds.len(), 9);
        assert_eq!(back.gpd.records, bundle.gpd.records);
    }

    #[test]
    fn path_roundtrips() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("spacegen-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("t.csv");
        write_csv_path(&t, &csv).unwrap();
        assert_eq!(read_csv_path(&csv).unwrap(), t);
        let bin = dir.join("t.bin");
        write_binary_path(&t, &bin).unwrap();
        assert_eq!(read_binary_path(&bin).unwrap(), t);
        assert!(matches!(read_binary_path(dir.join("missing.bin")), Err(IoError::File(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display() {
        assert!(IoError::TruncatedRecord.to_string().contains("truncated"));
        assert!(IoError::BadHeader.to_string().contains("header"));
    }
}
