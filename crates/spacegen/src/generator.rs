//! Algorithm 1: correlated synthetic trace generation.
//!
//! Faithful implementation of the paper's Appendix A.1 algorithm:
//!
//! * **Phase 1 (initialization)** — sample objects from the GPD; every
//!   object with popularity `pᵢ > 0` at location `i` enters that
//!   location's generation stack, until each stack is at least as deep
//!   (in bytes) as the largest finite stack distance of its pFD.
//! * **Phase 2 (generation)** — per location, pop the top object, emit a
//!   request for it, and either retire it (quota of `pᵢ` requests
//!   reached — a replacement is sampled from the GPD) or reinsert it at
//!   a byte stack distance sampled from `Pᵢ(d | p, s)`. Locations
//!   advance in proportion to their production request rates.
//! * Timestamps are assigned from each location's average request rate.

use crate::fd::FootprintDescriptor;
use crate::gpd::GlobalPopularity;
use crate::stack::{CacheStack, StackEntry};
use crate::trace::{LocationId, Request, Trace};
use rand::prelude::*;
use starcdn_cache::object::ObjectId;
use starcdn_orbit::time::SimTime;
use std::collections::HashMap;

/// How synthetic requests are timestamped (§4.2: "based on either the
/// average data rate derived from the pFD or a more fine-grained data
/// rate computed from the real traces").
#[derive(Debug, Clone, Default)]
pub enum TimestampMode {
    /// Request `k` at location `i` fires at `k / rateᵢ` seconds.
    #[default]
    AverageRate,
    /// Reuse the production trace's per-location timestamp sequences, so
    /// diurnal bursts (and hence temporal cache locality) carry over.
    /// Requests beyond the production length extrapolate at the mean gap.
    FineGrained(Vec<Vec<SimTime>>),
}

/// Configuration for one generation run.
#[derive(Debug, Clone, Default)]
pub struct GeneratorConfig {
    /// Target number of requests for the *fastest* location; slower
    /// locations get proportionally fewer, preserving relative rates.
    pub requests_at_fastest: usize,
    /// Warm-up requests (at the fastest location) generated and
    /// *discarded* before the kept window begins.
    ///
    /// Popular objects have lifetimes (quota × mean gap) comparable to a
    /// whole day-length trace, so an object sampled mid-run cannot finish
    /// its quota; without a warm-up the emitted-gap mixture skews toward
    /// large gaps (measured: realized median gap 2× the pFD's) and the
    /// unique-object count inflates. One window of warm-up starts the
    /// kept window in the stationary regime, like the production window
    /// it mimics. Set it ≈ `requests_at_fastest`.
    pub warmup_at_fastest: usize,
    /// RNG seed.
    pub seed: u64,
    /// Timestamp assignment mode (applies to the kept window).
    pub timestamps: TimestampMode,
}

struct GenState<'a> {
    gpd: &'a GlobalPopularity,
    stacks: Vec<CacheStack>,
    /// Total (target) popularity per synthetic object per location —
    /// `P(d | p, s)` conditions on the *total* popularity.
    totals: HashMap<(ObjectId, u16), u32>,
    next_object: u64,
}

impl<'a> GenState<'a> {
    /// Sample one GPD record and enqueue it at every location where its
    /// popularity is positive (Algorithm 1 lines 9–14 / 25).
    fn sample_new_object(&mut self, rng: &mut StdRng) {
        let rec = self.gpd.sample(rng).clone();
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        for (i, &p) in rec.popularity.iter().enumerate() {
            if p > 0 {
                self.stacks[i].push_back(StackEntry { object: id, popularity: p, size: rec.size });
                self.totals.insert((id, i as u16), p);
            }
        }
    }
}

/// Run Algorithm 1. `pfds[i]` must correspond to location `i` of the GPD.
///
/// Returns the merged multi-location synthetic trace (objects live in a
/// fresh id namespace, disjoint from the production trace's).
pub fn generate(
    gpd: &GlobalPopularity,
    pfds: &[FootprintDescriptor],
    cfg: &GeneratorConfig,
) -> Trace {
    assert_eq!(pfds.len(), gpd.num_locations, "one pFD per GPD location required");
    if gpd.is_empty() || pfds.is_empty() {
        return Trace::default();
    }
    let n = pfds.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x000a_1601);

    let mut state = GenState {
        gpd,
        stacks: (0..n).map(|_| CacheStack::new()).collect(),
        totals: HashMap::new(),
        next_object: 0,
    };

    // Phase 1: fill stacks deep enough to realize (nearly) every reuse
    // distance. The p99 of the pooled distances is used rather than the
    // absolute maximum: on day-length traces the maximum is a lone
    // outlier close to the full working-set size, and filling to it
    // strands far more partially-consumed objects than the production
    // trace contains (inflating the unique-object count and diluting
    // popularity — measured +69 % objects before this correction).
    let fill_target: Vec<u64> =
        pfds.iter().map(|fd| fd.stack_distance_quantile(0.99).max(1)).collect();
    let max_fill_iters = 200 * gpd.len().max(1024);
    let mut iters = 0usize;
    while state.stacks.iter().zip(&fill_target).any(|(s, &t)| s.total_bytes() < t) {
        state.sample_new_object(&mut rng);
        iters += 1;
        if iters > max_fill_iters {
            // A location whose GPD share is tiny may fill very slowly;
            // proceed once everyone has at least something queued.
            if state.stacks.iter().all(|s| !s.is_empty()) {
                break;
            }
        }
    }

    // Phase 2: generation, rate-proportional interleaving.
    let rates: Vec<f64> = pfds.iter().map(|fd| fd.req_rate_hz.max(0.0)).collect();
    let max_rate = rates.iter().cloned().fold(0.0f64, f64::max);
    if max_rate <= 0.0 {
        return Trace::default();
    }
    let keep_targets: Vec<usize> = rates
        .iter()
        .map(|r| ((r / max_rate) * cfg.requests_at_fastest as f64).round() as usize)
        .collect();
    let warmups: Vec<usize> = rates
        .iter()
        .map(|r| ((r / max_rate) * cfg.warmup_at_fastest as f64).round() as usize)
        .collect();
    let targets: Vec<usize> = keep_targets.iter().zip(&warmups).map(|(k, w)| k + w).collect();

    let mut requests = Vec::with_capacity(keep_targets.iter().sum());
    let mut emitted = vec![0usize; n];
    let mut counters = vec![0.0f64; n];

    while emitted.iter().zip(&targets).any(|(&e, &t)| e < t) {
        for i in 0..n {
            if emitted[i] >= targets[i] || rates[i] <= 0.0 {
                continue;
            }
            counters[i] += rates[i] / max_rate;
            while counters[i] >= 1.0 && emitted[i] < targets[i] {
                counters[i] -= 1.0;
                emit_one(
                    &mut state,
                    pfds,
                    i,
                    &rates,
                    &cfg.timestamps,
                    &fill_target,
                    &warmups,
                    &mut emitted,
                    &mut requests,
                    &mut rng,
                );
            }
        }
    }

    Trace::new(requests)
}

#[allow(clippy::too_many_arguments)]
fn emit_one(
    state: &mut GenState<'_>,
    pfds: &[FootprintDescriptor],
    i: usize,
    rates: &[f64],
    timestamps: &TimestampMode,
    fill_target: &[u64],
    warmups: &[usize],
    emitted: &mut [usize],
    requests: &mut Vec<Request>,
    rng: &mut StdRng,
) {
    // Keep the stack non-empty (can drain when targets exceed fill).
    let mut guard = 0;
    while state.stacks[i].is_empty() {
        state.sample_new_object(rng);
        guard += 1;
        if guard > 10_000 {
            return; // GPD never assigns popularity here; give up quietly
        }
    }
    let mut entry = state.stacks[i].pop_front().expect("non-empty stack");

    let warm = emitted[i] < warmups[i];
    emitted[i] += 1;
    if !warm {
        // Index within the kept window.
        let k = emitted[i] - 1 - warmups[i];
        let time = match timestamps {
            TimestampMode::AverageRate => {
                SimTime::from_millis((k as f64 / rates[i] * 1000.0) as u64)
            }
            TimestampMode::FineGrained(per_loc) => {
                let ts = &per_loc[i];
                if ts.is_empty() {
                    SimTime::from_millis((k as f64 / rates[i] * 1000.0) as u64)
                } else if k < ts.len() {
                    ts[k]
                } else {
                    // Extrapolate past the production trace at its mean gap.
                    let span = ts.last().unwrap().as_millis().max(1);
                    let mean_gap = span / ts.len() as u64;
                    SimTime::from_millis(
                        ts.last().unwrap().as_millis() + mean_gap * (k - ts.len() + 1) as u64,
                    )
                }
            }
        };
        requests.push(Request {
            time,
            object: entry.object,
            size: entry.size,
            location: LocationId(i as u16),
        });
    }

    entry.popularity -= 1;
    if entry.popularity == 0 {
        // Quota reached: retire and replenish "like the initialization
        // phase" (Algorithm 1 line 25) — i.e. refill the drained stack
        // back to its fill threshold. Refilling exactly on every
        // retirement would oversample: a retirement is per (object,
        // location) while each sampled object lands in every location
        // with positive popularity, multiplying the object population by
        // the mean spread (measured: +69 % unique objects).
        state.totals.remove(&(entry.object, i as u16));
        while state.stacks[i].total_bytes() < fill_target[i] {
            state.sample_new_object(rng);
        }
    } else {
        let total =
            state.totals.get(&(entry.object, i as u16)).copied().unwrap_or(entry.popularity + 1);
        let d = pfds[i].sample_distance(total, entry.size, rng);
        state.stacks[i].insert_at_bytes(d, entry);
    }
}

/// Convenience pipeline: extract pFDs + GPD from a production trace and
/// generate a synthetic trace with `requests_at_fastest` requests at the
/// busiest location.
pub fn generate_from_production(
    production: &Trace,
    num_locations: usize,
    requests_at_fastest: usize,
    seed: u64,
) -> Trace {
    let per_loc = production.split_by_location(num_locations);
    let pfds: Vec<FootprintDescriptor> = per_loc
        .iter()
        .enumerate()
        .map(|(i, t)| FootprintDescriptor::from_trace(t, seed ^ (i as u64) << 32))
        .collect();
    // Fine-grained timestamps: carry the production trace's per-location
    // arrival sequences over to the synthetic trace, preserving diurnal
    // burst structure (and hence temporal cache locality).
    let timestamps: Vec<Vec<_>> =
        per_loc.iter().map(|t| t.requests.iter().map(|r| r.time).collect()).collect();
    let gpd = GlobalPopularity::from_trace(production, num_locations);
    generate(
        &gpd,
        &pfds,
        &GeneratorConfig {
            requests_at_fastest,
            warmup_at_fastest: requests_at_fastest,
            seed,
            timestamps: TimestampMode::FineGrained(timestamps),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::TrafficClass;
    use crate::production::ProductionModel;
    use crate::trace::Location;
    use starcdn_orbit::time::SimDuration;

    fn production_trace() -> (Trace, usize) {
        let params = TrafficClass::Video.params().scaled(0.02); // 1200 objects
        let locs = Location::akamai_nine();
        let model = ProductionModel::build(params, &locs, 11);
        (model.generate_trace(SimDuration::from_hours(6), 3), locs.len())
    }

    #[test]
    fn empty_inputs_empty_trace() {
        let gpd = GlobalPopularity { num_locations: 2, records: vec![] };
        let pfds = vec![
            FootprintDescriptor::from_trace(&Trace::default(), 0),
            FootprintDescriptor::from_trace(&Trace::default(), 1),
        ];
        let out = generate(&gpd, &pfds, &GeneratorConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn generates_requested_volume() {
        let (prod, n) = production_trace();
        let synth = generate_from_production(&prod, n, 5_000, 3);
        assert!(!synth.is_empty());
        let by_loc = synth.split_by_location(n);
        let max_len = by_loc.iter().map(|t| t.len()).max().unwrap();
        assert!(
            (4_500..=5_500).contains(&max_len),
            "fastest location generated {max_len} (target 5000)"
        );
    }

    #[test]
    fn rates_proportional_to_production() {
        let (prod, n) = production_trace();
        let synth = generate_from_production(&prod, n, 5_000, 3);
        let prod_loc = prod.split_by_location(n);
        let synth_loc = synth.split_by_location(n);
        let prod_max = prod_loc.iter().map(|t| t.len()).max().unwrap() as f64;
        let synth_max = synth_loc.iter().map(|t| t.len()).max().unwrap() as f64;
        for i in 0..n {
            let p = prod_loc[i].len() as f64 / prod_max;
            let s = synth_loc[i].len() as f64 / synth_max;
            assert!(
                (p - s).abs() < 0.1,
                "location {i}: production share {p:.2} vs synthetic {s:.2}"
            );
        }
    }

    #[test]
    fn timestamps_monotone_per_location_and_rate_preserved() {
        let (prod, n) = production_trace();
        let synth = generate_from_production(&prod, n, 3_000, 5);
        for (i, t) in synth.split_by_location(n).iter().enumerate() {
            for w in t.requests.windows(2) {
                assert!(w[0].time <= w[1].time, "location {i} times not monotone");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (prod, n) = production_trace();
        let a = generate_from_production(&prod, n, 2_000, 9);
        let b = generate_from_production(&prod, n, 2_000, 9);
        assert_eq!(a, b);
        let c = generate_from_production(&prod, n, 2_000, 10);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn objects_respect_popularity_quota() {
        let (prod, n) = production_trace();
        let synth = generate_from_production(&prod, n, 4_000, 7);
        // No synthetic object should wildly exceed the maximum production
        // per-location popularity (quota is enforced per object).
        let max_prod_pop = {
            let gpd = GlobalPopularity::from_trace(&prod, n);
            gpd.records.iter().flat_map(|r| r.popularity.iter().copied()).max().unwrap() as usize
        };
        let mut counts: HashMap<(ObjectId, LocationId), usize> = HashMap::new();
        for r in &synth.requests {
            *counts.entry((r.object, r.location)).or_default() += 1;
        }
        let max_synth_pop = counts.values().copied().max().unwrap();
        assert!(
            max_synth_pop <= max_prod_pop,
            "synthetic popularity {max_synth_pop} exceeds production max {max_prod_pop}"
        );
    }

    #[test]
    fn synthetic_objects_are_shared_across_locations() {
        // The GPD's cross-location correlation must survive generation.
        let (prod, n) = production_trace();
        let synth = generate_from_production(&prod, n, 5_000, 3);
        let gpd_synth = GlobalPopularity::from_trace(&synth, n);
        let gpd_prod = GlobalPopularity::from_trace(&prod, n);
        let fs = gpd_synth.shared_fraction();
        let fp = gpd_prod.shared_fraction();
        assert!((fs - fp).abs() < 0.25, "shared fraction: synthetic {fs:.2} vs production {fp:.2}");
    }
}
