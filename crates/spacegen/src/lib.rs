//! SpaceGEN — synthetic trace generation for satellite-based CDNs (§4).
//!
//! The paper's evaluation needs *geo-distributed* content-access traces:
//! a LEO satellite sweeps over many cities per orbit, so a single-location
//! trace cannot exercise the system. SpaceGEN generates per-location
//! synthetic traces that jointly preserve:
//!
//! * **object-level** statistics — popularity, size and request-size
//!   distributions (via popularity-size footprint descriptors, *pFDs*);
//! * **cache-level** statistics — request/byte hit-rate curves (via the
//!   stack-distance component of the pFD);
//! * **cross-location** structure — which objects are shared between
//!   locations and how much traffic they carry (via the global
//!   popularity distribution, *GPD*).
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. A *production* trace is obtained. The paper uses Akamai logs from
//!    nine cities; this reproduction synthesizes a production-like
//!    multi-city workload ([`production`]) calibrated to the paper's
//!    published overlap statistics (Table 2, Fig. 2) — see DESIGN.md
//!    substitution #1.
//! 2. pFDs are extracted per location ([`fd`]) and the GPD across
//!    locations ([`gpd`]).
//! 3. Algorithm 1 ([`generator`]) produces synthetic traces of arbitrary
//!    length from those models.
//! 4. [`validate`] confirms the synthetic trace matches the production
//!    trace on object spread, traffic spread, and hit-rate curves
//!    (Fig. 6).

pub mod classes;
pub mod fd;
pub mod generator;
pub mod gpd;
pub mod io;
pub mod production;
pub mod stack;
pub mod trace;
pub mod validate;

pub use classes::TrafficClass;
pub use fd::FootprintDescriptor;
pub use generator::{generate, GeneratorConfig};
pub use gpd::GlobalPopularity;
pub use production::ProductionModel;
pub use trace::{Location, LocationId, Request, Trace};
