//! CDN traffic classes and their workload parameters.
//!
//! The paper evaluates three classes served by Akamai's CDN — video
//! (§5.2), web and software downloads (§5.5) — with very different
//! object sizes, popularity skew and request rates:
//!
//! * video: ~1 MB median objects, strong skew, high byte volume
//!   (paper: 423 M requests / 512 TB over 24 M objects / 24 TB at 1 %
//!   sampling);
//! * web: tens-of-KB objects, many requests, sharper skew;
//! * downloads: tens-of-MB installers, few requests, flatter skew.
//!
//! The numbers here are per-class *model parameters* for the
//! production-workload substitute (see DESIGN.md substitution #1), sized
//! so laptop-scale experiments preserve the paper's
//! cache-size : working-set regime.

use serde::{Deserialize, Serialize};

/// One of the paper's three traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    Video,
    Web,
    Download,
}

impl TrafficClass {
    /// All classes, for sweeps.
    pub const ALL: [TrafficClass; 3] =
        [TrafficClass::Video, TrafficClass::Web, TrafficClass::Download];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Video => "video",
            TrafficClass::Web => "web",
            TrafficClass::Download => "download",
        }
    }

    /// Default model parameters for this class.
    pub fn params(self) -> ClassParams {
        match self {
            TrafficClass::Video => ClassParams {
                class: self,
                catalog_size: 60_000,
                zipf_alpha: 1.05,
                size_median_bytes: 1 << 20, // 1 MiB
                // Video is served as similar-sized segments, so sizes are
                // tight — which keeps byte hit rate tracking request hit
                // rate as in the paper's Fig. 7a/7b.
                size_sigma: 0.6,
                size_cap_bytes: 64 << 20,
                base_rate_per_loc_hz: 3.0,
                diurnal_amplitude: 0.4,
                home_boost: 2.0,
                distance_scale_km: 4000.0,
                same_language_share: 0.60,
                cross_language_share: 0.21,
                popular_knee_frac: 0.02,
                head_share_same: 0.55,
                head_share_cross: 0.33,
                per_location_noise_sigma: 0.5,
            },
            TrafficClass::Web => ClassParams {
                class: self,
                catalog_size: 120_000,
                zipf_alpha: 1.15,
                size_median_bytes: 32 << 10, // 32 KiB
                size_sigma: 1.5,
                size_cap_bytes: 8 << 20,
                base_rate_per_loc_hz: 6.0,
                diurnal_amplitude: 0.5,
                home_boost: 2.0,
                distance_scale_km: 5000.0,
                same_language_share: 0.55,
                cross_language_share: 0.30,
                popular_knee_frac: 0.03,
                head_share_same: 0.50,
                head_share_cross: 0.40,
                per_location_noise_sigma: 0.6,
            },
            TrafficClass::Download => ClassParams {
                class: self,
                catalog_size: 12_000,
                zipf_alpha: 0.90,
                size_median_bytes: 24 << 20, // 24 MiB
                size_sigma: 0.9,
                size_cap_bytes: 512 << 20,
                base_rate_per_loc_hz: 0.8,
                diurnal_amplitude: 0.3,
                home_boost: 1.5,
                distance_scale_km: 8000.0,
                same_language_share: 0.70,
                cross_language_share: 0.50, // software is language-agnostic
                popular_knee_frac: 0.05,
                head_share_same: 0.80,
                head_share_cross: 0.70,
                per_location_noise_sigma: 0.4,
            },
        }
    }
}

impl std::str::FromStr for TrafficClass {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "video" => Ok(TrafficClass::Video),
            "web" => Ok(TrafficClass::Web),
            "download" | "downloads" => Ok(TrafficClass::Download),
            other => Err(format!("unknown traffic class `{other}`")),
        }
    }
}

/// Parameters of the production-workload model for one traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassParams {
    pub class: TrafficClass,
    /// Number of distinct objects in the global catalog.
    pub catalog_size: usize,
    /// Zipf exponent of global object popularity.
    pub zipf_alpha: f64,
    /// Median object size (lognormal).
    pub size_median_bytes: u64,
    /// Lognormal shape parameter of the size distribution.
    pub size_sigma: f64,
    /// Hard cap on object size.
    pub size_cap_bytes: u64,
    /// Mean request rate per location, requests/second.
    pub base_rate_per_loc_hz: f64,
    /// Diurnal modulation amplitude in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Popularity multiplier at an object's home location.
    pub home_boost: f64,
    /// e-folding distance of geographic content sharing, km.
    pub distance_scale_km: f64,
    /// Baseline sharing probability between same-language locations.
    pub same_language_share: f64,
    /// Baseline sharing probability across language groups.
    pub cross_language_share: f64,
    /// Fraction of the catalog considered "head" content whose sharing
    /// reach extends beyond the tail's — this is what pushes *traffic*
    /// overlap above *object* overlap (Fig. 2: 55 % objects vs 90 %
    /// traffic for nearby cities).
    pub popular_knee_frac: f64,
    /// Extra sharing of head content between same-language locations
    /// (added to `same_language_share` before the distance decay).
    pub head_share_same: f64,
    /// Extra sharing of head content across language groups.
    pub head_share_cross: f64,
    /// Lognormal sigma of per-location popularity perturbation.
    pub per_location_noise_sigma: f64,
}

impl ClassParams {
    /// Scale the catalog and request rate by `factor` (for smoke tests
    /// and CI-speed experiments), keeping all shape parameters.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.catalog_size = ((self.catalog_size as f64 * factor).round() as usize).max(100);
        self.base_rate_per_loc_hz *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_name_roundtrip() {
        for c in TrafficClass::ALL {
            assert_eq!(c.name().parse::<TrafficClass>().unwrap(), c);
        }
        assert_eq!("downloads".parse::<TrafficClass>().unwrap(), TrafficClass::Download);
        assert!("audio".parse::<TrafficClass>().is_err());
    }

    #[test]
    fn class_contrasts_match_paper() {
        let v = TrafficClass::Video.params();
        let w = TrafficClass::Web.params();
        let d = TrafficClass::Download.params();
        // Web objects are far smaller than video; downloads far larger.
        assert!(w.size_median_bytes * 10 < v.size_median_bytes);
        assert!(d.size_median_bytes > v.size_median_bytes * 10);
        // Web has the most requests, downloads the fewest.
        assert!(w.base_rate_per_loc_hz > v.base_rate_per_loc_hz);
        assert!(d.base_rate_per_loc_hz < v.base_rate_per_loc_hz);
        // Downloads cross language borders most easily.
        assert!(d.cross_language_share > v.cross_language_share);
    }

    #[test]
    fn scaled_shrinks_catalog_and_rate() {
        let p = TrafficClass::Video.params().scaled(0.1);
        assert_eq!(p.catalog_size, 6_000);
        assert!((p.base_rate_per_loc_hz - 0.3).abs() < 1e-12);
        // Shape parameters untouched.
        assert_eq!(p.zipf_alpha, TrafficClass::Video.params().zipf_alpha);
    }

    #[test]
    #[should_panic]
    fn scaled_rejects_zero() {
        TrafficClass::Video.params().scaled(0.0);
    }

    #[test]
    fn scaled_has_floor() {
        let p = TrafficClass::Video.params().scaled(1e-9);
        assert!(p.catalog_size >= 100);
    }
}
