//! Popularity-Size Footprint Descriptors (pFDs).
//!
//! A pFD (Sundarrajan et al., CoNEXT '17; §4.1 of the paper) is the joint
//! distribution `P(p, s, d, t)` over a single location's trace, where `p`
//! is an object's popularity (request count), `s` its size, `d` the
//! *byte stack distance* between consecutive accesses (unique bytes
//! requested in between), and `t` the inter-arrival time. pFDs determine
//! LRU hit-rate curves exactly, which is why traces generated from them
//! reproduce cache behaviour.
//!
//! Stack distances are computed exactly with a Fenwick tree over request
//! positions (each distinct object contributes its size at its most
//! recent access position), O(n log n) for an n-request trace.

use crate::trace::Trace;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use starcdn_cache::object::ObjectId;
use std::collections::HashMap;

/// Fenwick tree over request positions with u64 byte weights.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Add `delta` at 0-based position `i` (delta may be "negative" via
    /// wrapping add of two's complement — callers only remove what they
    /// previously added, so sums stay exact).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based, inclusive).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Log2 bucketing of popularities and sizes used to condition `P(d|p,s)`.
fn log2_class(v: u64) -> u8 {
    (64 - v.max(1).leading_zeros()) as u8
}

/// Pack a (popularity-class, size-class) pair into one map key — JSON
/// object keys must be strings, so tuple keys would not serialize.
fn class_key(p_class: u8, s_class: u8) -> u16 {
    ((p_class as u16) << 8) | s_class as u16
}

/// Reservoir of sampled stack distances for one (popularity, size) class.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct DistanceReservoir {
    samples: Vec<u64>,
    seen: u64,
}

const RESERVOIR_CAP: usize = 4096;

impl DistanceReservoir {
    fn push(&mut self, d: u64, rng: &mut impl Rng) {
        self.seen += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(d);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = d;
            }
        }
    }
}

/// A footprint descriptor extracted from one location's trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FootprintDescriptor {
    /// Empirical object population: `(popularity, size)` per object.
    pub objects: Vec<(u32, u64)>,
    /// Conditional stack-distance reservoirs keyed by the packed
    /// `(log2(popularity), log2(size))` class (see `class_key`).
    dist: HashMap<u16, DistanceReservoir>,
    /// All finite stack distances pooled (fallback for unseen classes).
    global: DistanceReservoir,
    /// Largest finite stack distance observed, bytes.
    pub max_stack_distance: u64,
    /// Mean request rate of the trace, requests/second.
    pub req_rate_hz: f64,
    /// Mean inter-arrival time between consecutive accesses to the same
    /// object, seconds.
    pub mean_interarrival_s: f64,
    /// Total requests in the source trace.
    pub total_requests: u64,
}

impl FootprintDescriptor {
    /// Extract the pFD of a single-location trace.
    pub fn from_trace(trace: &Trace, seed: u64) -> Self {
        let n = trace.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfd_fd_fd);
        let mut fenwick = Fenwick::new(n);
        let mut last_pos: HashMap<ObjectId, usize> = HashMap::new();
        let mut last_time: HashMap<ObjectId, f64> = HashMap::new();
        let mut pop: HashMap<ObjectId, (u32, u64)> = HashMap::new();

        let mut dist: HashMap<u16, DistanceReservoir> = HashMap::new();
        let mut global = DistanceReservoir::default();
        let mut max_d = 0u64;
        let mut inter_sum = 0.0f64;
        let mut inter_count = 0u64;

        // First pass: per-object popularity (the pFD conditions d on the
        // object's *total* popularity in the trace).
        for r in &trace.requests {
            let e = pop.entry(r.object).or_insert((0, r.size));
            e.0 += 1;
        }

        // Second pass: stack distances and inter-arrivals.
        for (i, r) in trace.requests.iter().enumerate() {
            if let Some(&j) = last_pos.get(&r.object) {
                // Unique bytes strictly between accesses j and i: every
                // object touched in (j, i) has its latest position there.
                let d = fenwick.prefix(i.saturating_sub(1)).wrapping_sub(fenwick.prefix(j));
                let (p, s) = pop[&r.object];
                let key = class_key(log2_class(p as u64), log2_class(s));
                dist.entry(key).or_default().push(d, &mut rng);
                global.push(d, &mut rng);
                max_d = max_d.max(d);
                fenwick.add(j, -(r.size as i64));
                let t_prev = last_time[&r.object];
                inter_sum += r.time.as_secs_f64() - t_prev;
                inter_count += 1;
            }
            fenwick.add(i, r.size as i64);
            last_pos.insert(r.object, i);
            last_time.insert(r.object, r.time.as_secs_f64());
        }

        let duration = trace.end_time().as_secs_f64().max(1e-9);
        FootprintDescriptor {
            objects: pop.values().copied().collect(),
            dist,
            global,
            max_stack_distance: max_d,
            req_rate_hz: n as f64 / duration,
            mean_interarrival_s: if inter_count > 0 { inter_sum / inter_count as f64 } else { 0.0 },
            total_requests: n as u64,
        }
    }

    /// Sample a stack distance conditioned on `(popularity, size)`;
    /// falls back to the pooled distribution for unseen classes.
    pub fn sample_distance(&self, popularity: u32, size: u64, rng: &mut impl Rng) -> u64 {
        let key = class_key(log2_class(popularity as u64), log2_class(size));
        let res = self.dist.get(&key).filter(|r| !r.samples.is_empty()).unwrap_or(&self.global);
        if res.samples.is_empty() {
            return self.max_stack_distance;
        }
        res.samples[rng.gen_range(0..res.samples.len())]
    }

    /// Number of (p, s) classes with recorded distances.
    pub fn class_count(&self) -> usize {
        self.dist.len()
    }

    /// The `q`-quantile of the pooled finite stack distances (0 when no
    /// distances were recorded). Used by the generator to size its
    /// initialization fill: filling to the absolute maximum distance — a
    /// single-sample outlier on day-length traces — strands far more
    /// partially-consumed objects than the production trace contains,
    /// diluting object popularity.
    pub fn stack_distance_quantile(&self, q: f64) -> u64 {
        if self.global.samples.is_empty() {
            return 0;
        }
        let mut v = self.global.samples.clone();
        v.sort_unstable();
        v[((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LocationId, Request};
    use starcdn_orbit::time::SimTime;

    fn req(t: u64, obj: u64, size: u64) -> Request {
        Request {
            time: SimTime::from_secs(t),
            object: ObjectId(obj),
            size,
            location: LocationId(0),
        }
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 5);
        f.add(3, 7);
        f.add(9, 2);
        assert_eq!(f.prefix(0), 5);
        assert_eq!(f.prefix(2), 5);
        assert_eq!(f.prefix(3), 12);
        assert_eq!(f.prefix(9), 14);
        f.add(3, -7);
        assert_eq!(f.prefix(9), 7);
    }

    #[test]
    fn stack_distance_simple_pattern() {
        // A B C A: distance for the second A = size(B) + size(C) = 30.
        let t = Trace::new(vec![req(0, 1, 5), req(1, 2, 10), req(2, 3, 20), req(3, 1, 5)]);
        let fd = FootprintDescriptor::from_trace(&t, 0);
        assert_eq!(fd.max_stack_distance, 30);
        assert_eq!(fd.total_requests, 4);
        assert_eq!(fd.objects.len(), 3);
    }

    #[test]
    fn repeated_intermediate_object_counted_once() {
        // A B B B A: distance for second A = size(B) = 10, not 30.
        let t = Trace::new(vec![
            req(0, 1, 5),
            req(1, 2, 10),
            req(2, 2, 10),
            req(3, 2, 10),
            req(4, 1, 5),
        ]);
        let fd = FootprintDescriptor::from_trace(&t, 0);
        assert_eq!(fd.max_stack_distance, 10);
    }

    #[test]
    fn immediate_reaccess_distance_zero() {
        let t = Trace::new(vec![req(0, 1, 5), req(1, 1, 5)]);
        let fd = FootprintDescriptor::from_trace(&t, 0);
        assert_eq!(fd.max_stack_distance, 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(fd.sample_distance(2, 5, &mut rng), 0);
    }

    #[test]
    fn popularity_counts() {
        let t = Trace::new(vec![req(0, 1, 5), req(1, 1, 5), req(2, 1, 5), req(3, 2, 7)]);
        let fd = FootprintDescriptor::from_trace(&t, 0);
        let mut objs = fd.objects.clone();
        objs.sort();
        assert_eq!(objs, vec![(1, 7), (3, 5)]);
    }

    #[test]
    fn interarrival_and_rate() {
        let t = Trace::new(vec![req(0, 1, 5), req(10, 1, 5), req(20, 1, 5)]);
        let fd = FootprintDescriptor::from_trace(&t, 0);
        assert!((fd.mean_interarrival_s - 10.0).abs() < 1e-9);
        assert!((fd.req_rate_hz - 3.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn sample_distance_falls_back_to_global() {
        let t = Trace::new(vec![req(0, 1, 5), req(1, 2, 8), req(2, 1, 5)]);
        let fd = FootprintDescriptor::from_trace(&t, 0);
        let mut rng = StdRng::seed_from_u64(0);
        // Query a (p, s) class that never occurred.
        let d = fd.sample_distance(1000, 1 << 40, &mut rng);
        assert_eq!(d, 8, "should fall back to the only observed distance");
    }

    #[test]
    fn log2_classes() {
        assert_eq!(log2_class(0), 1); // clamped to 1
        assert_eq!(log2_class(1), 1);
        assert_eq!(log2_class(2), 2);
        assert_eq!(log2_class(3), 2);
        assert_eq!(log2_class(1024), 11);
    }

    #[test]
    fn reservoir_caps_memory() {
        let mut res = DistanceReservoir::default();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..20_000u64 {
            res.push(i, &mut rng);
        }
        assert_eq!(res.samples.len(), RESERVOIR_CAP);
        assert_eq!(res.seen, 20_000);
    }

    #[test]
    fn larger_reuse_window_larger_distance() {
        // Construct a trace where object X returns after 2 objects and Y
        // after 5; X's distances should be smaller.
        let mut reqs = Vec::new();
        let mut t = 0u64;
        for round in 0..50u64 {
            reqs.push(req(t, 1000, 10)); // X
            t += 1;
            for k in 0..2 {
                reqs.push(req(t, round * 100 + k, 10));
                t += 1;
            }
            reqs.push(req(t, 1000, 10)); // X again: d = 20
            t += 1;
            reqs.push(req(t, 2000, 10)); // Y
            t += 1;
            for k in 10..15 {
                reqs.push(req(t, round * 100 + k, 10));
                t += 1;
            }
            reqs.push(req(t, 2000, 10)); // Y again: d = 50
            t += 1;
        }
        let fd = FootprintDescriptor::from_trace(&Trace::new(reqs), 0);
        assert!(fd.max_stack_distance >= 50);
        assert!(fd.class_count() >= 1);
    }
}
