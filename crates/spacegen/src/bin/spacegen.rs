//! `spacegen` — the trace-generation command-line tool.
//!
//! Mirrors the workflow of the paper's open-sourced SpaceGEN:
//!
//! ```text
//! spacegen synthesize --class video --hours 24 --seed 1 --out prod.csv
//!     Generate a production-like multi-city trace from the built-in
//!     workload model (the Akamai-trace substitute).
//!
//! spacegen extract --trace prod.csv --locations 9 --out models.json
//!     Extract the traffic models (per-location pFDs + GPD).
//!
//! spacegen generate --models models.json --requests 100000 --seed 2 --out synth.csv
//!     Run Algorithm 1 against extracted models.
//!
//! spacegen validate --production prod.csv --synthetic synth.csv --locations 9
//!     Print fidelity statistics (spreads, overlap, LRU hit rates).
//! ```
//!
//! Traces ending in `.bin` use the compact binary format; anything else
//! is CSV.

use spacegen::classes::TrafficClass;
use spacegen::generator::{generate, GeneratorConfig, TimestampMode};
use spacegen::io::{read_binary, read_csv, write_binary, write_csv, ModelBundle};
use spacegen::production::ProductionModel;
use spacegen::trace::{Location, Trace};
use spacegen::validate::{cdf_distance, object_spread_cdf, traffic_spread_cdf};
use starcdn_cache::policy::PolicyKind;
use starcdn_cache::simulate::hit_rate_curve;
use starcdn_orbit::time::SimDuration;
use std::collections::HashMap;
use std::fs::File;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let opts = parse_opts(args);
    match cmd.as_str() {
        "synthesize" => synthesize(&opts),
        "extract" => extract(&opts),
        "generate" => generate_cmd(&opts),
        "validate" => validate(&opts),
        "--help" | "-h" | "help" => usage(),
        other => die(&format!("unknown command `{other}`")),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spacegen <synthesize|extract|generate|validate> [--class C] [--hours H] \
         [--seed S] [--trace F] [--models F] [--requests N] [--locations N] \
         [--production F] [--synthetic F] [--out F]"
    );
    exit(2)
}

fn die(msg: &str) -> ! {
    eprintln!("spacegen: {msg}");
    exit(2)
}

fn parse_opts(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.peekable();
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            die(&format!("expected --flag, got `{k}`"));
        };
        let Some(v) = it.next() else { die(&format!("--{key} needs a value")) };
        out.insert(key.to_string(), v);
    }
    out
}

fn opt<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or_else(|| die(&format!("--{key} is required")))
}

fn load_trace(path: &str) -> Trace {
    let f = File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
    let result = if path.ends_with(".bin") { read_binary(f) } else { read_csv(f) };
    result.unwrap_or_else(|e| die(&format!("read {path}: {e}")))
}

fn save_trace(trace: &Trace, path: &str) {
    let f = File::create(path).unwrap_or_else(|e| die(&format!("create {path}: {e}")));
    let result = if path.ends_with(".bin") { write_binary(trace, f) } else { write_csv(trace, f) };
    result.unwrap_or_else(|e| die(&format!("write {path}: {e}")));
    eprintln!("wrote {} requests to {path}", trace.len());
}

fn synthesize(opts: &HashMap<String, String>) {
    let class: TrafficClass =
        opt(opts, "class", "video").parse().unwrap_or_else(|e: String| die(&e));
    let hours: u64 = opt(opts, "hours", "24").parse().unwrap_or_else(|_| die("--hours: bad u64"));
    let seed: u64 = opt(opts, "seed", "42").parse().unwrap_or_else(|_| die("--seed: bad u64"));
    let scale: f64 = opt(opts, "scale", "0.1").parse().unwrap_or_else(|_| die("--scale: bad f64"));
    let out = required(opts, "out");

    let locations = Location::akamai_nine();
    let model = ProductionModel::build(class.params().scaled(scale), &locations, seed);
    let trace = model.generate_trace(SimDuration::from_hours(hours), seed);
    save_trace(&trace, out);
}

fn extract(opts: &HashMap<String, String>) {
    let trace = load_trace(required(opts, "trace"));
    let n: usize =
        opt(opts, "locations", "9").parse().unwrap_or_else(|_| die("--locations: bad usize"));
    let seed: u64 = opt(opts, "seed", "0").parse().unwrap_or_else(|_| die("--seed: bad u64"));
    let out = required(opts, "out");
    let bundle = ModelBundle::from_trace(&trace, n, seed);
    let f = File::create(out).unwrap_or_else(|e| die(&format!("create {out}: {e}")));
    bundle.write_json(f).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    eprintln!(
        "extracted {} pFDs + GPD over {} objects to {out}",
        bundle.pfds.len(),
        bundle.gpd.len()
    );
}

fn generate_cmd(opts: &HashMap<String, String>) {
    let models = required(opts, "models");
    let f = File::open(models).unwrap_or_else(|e| die(&format!("open {models}: {e}")));
    let bundle = ModelBundle::read_json(f).unwrap_or_else(|e| die(&format!("read {models}: {e}")));
    let requests: usize =
        opt(opts, "requests", "100000").parse().unwrap_or_else(|_| die("--requests: bad usize"));
    let seed: u64 = opt(opts, "seed", "0").parse().unwrap_or_else(|_| die("--seed: bad u64"));
    let out = required(opts, "out");

    let cfg = GeneratorConfig {
        requests_at_fastest: requests,
        warmup_at_fastest: requests,
        seed,
        timestamps: TimestampMode::AverageRate,
    };
    let trace = generate(&bundle.gpd, &bundle.pfds, &cfg);
    save_trace(&trace, out);
}

fn validate(opts: &HashMap<String, String>) {
    let prod = load_trace(required(opts, "production"));
    let synth = load_trace(required(opts, "synthetic"));
    let n: usize =
        opt(opts, "locations", "9").parse().unwrap_or_else(|_| die("--locations: bad usize"));

    println!(
        "production: {} requests / {} objects; synthetic: {} / {}",
        prod.len(),
        prod.unique_objects().0,
        synth.len(),
        synth.unique_objects().0
    );
    println!(
        "spread KS: objects {:.3}, traffic {:.3}",
        cdf_distance(&object_spread_cdf(&prod, n), &object_spread_cdf(&synth, n)),
        cdf_distance(&traffic_spread_cdf(&prod, n), &traffic_spread_cdf(&synth, n)),
    );
    let (_, ws) = prod.unique_objects();
    let sizes = [ws / 100, ws / 20, ws / 5];
    let hp = hit_rate_curve(PolicyKind::Lru, &sizes, &prod.accesses());
    let hs = hit_rate_curve(PolicyKind::Lru, &sizes, &synth.accesses());
    for (i, &s) in sizes.iter().enumerate() {
        println!(
            "LRU @ {:>10} B: production {:.1}% vs synthetic {:.1}% RHR",
            s,
            hp[i].stats.request_hit_rate() * 100.0,
            hs[i].stats.request_hit_rate() * 100.0
        );
    }
}
