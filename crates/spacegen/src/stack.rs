//! The byte-weighted cache stack of Algorithm 1.
//!
//! SpaceGEN's generation phase maintains, per location, an LRU-like stack
//! of objects. Each step pops the top object, emits a request, and
//! re-inserts the object at a *byte* stack distance `d` sampled from the
//! pFD — i.e. at the first position `j` such that the entries above `j`
//! total at least `d` bytes. A treap augmented with subtree byte sums
//! provides O(log n) pop-front / push-back / insert-at-byte-offset.

use starcdn_cache::object::ObjectId;

/// An object resident in the generation stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    pub object: ObjectId,
    /// Target number of requests this object must receive at this
    /// location (its popularity from the GPD sample).
    pub popularity: u32,
    /// Object size in bytes.
    pub size: u64,
}

#[derive(Debug)]
struct Node {
    entry: StackEntry,
    priority: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
    subtree_len: usize,
    subtree_bytes: u64,
}

impl Node {
    fn new(entry: StackEntry, priority: u64) -> Box<Node> {
        Box::new(Node {
            subtree_len: 1,
            subtree_bytes: entry.size,
            entry,
            priority,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        self.subtree_len = 1 + len(&self.left) + len(&self.right);
        self.subtree_bytes = self.entry.size + bytes(&self.left) + bytes(&self.right);
    }
}

fn len(n: &Option<Box<Node>>) -> usize {
    n.as_ref().map_or(0, |n| n.subtree_len)
}

fn bytes(n: &Option<Box<Node>>) -> u64 {
    n.as_ref().map_or(0, |n| n.subtree_bytes)
}

fn merge(a: Option<Box<Node>>, b: Option<Box<Node>>) -> Option<Box<Node>> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut a), Some(mut b)) => {
            if a.priority >= b.priority {
                a.right = merge(a.right.take(), Some(b));
                a.update();
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take());
                b.update();
                Some(b)
            }
        }
    }
}

/// Split into (prefix, suffix) where `prefix` is the minimal prefix whose
/// byte total is ≥ `d` (empty if `d == 0`).
fn split_bytes(t: Option<Box<Node>>, d: u64) -> (Option<Box<Node>>, Option<Box<Node>>) {
    let Some(mut t) = t else { return (None, None) };
    if d == 0 {
        return (None, Some(t));
    }
    let lb = bytes(&t.left);
    if lb >= d {
        let (a, b) = split_bytes(t.left.take(), d);
        t.left = b;
        t.update();
        (a, Some(t))
    } else if lb + t.entry.size >= d {
        // This node completes the prefix.
        let right = t.right.take();
        t.update();
        (Some(t), right)
    } else {
        let need = d - lb - t.entry.size;
        let (a, b) = split_bytes(t.right.take(), need);
        t.right = a;
        t.update();
        (Some(t), b)
    }
}

/// Deterministic priority stream (splitmix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The generation stack: a sequence of [`StackEntry`] ordered from cache
/// top (front) to bottom (back).
#[derive(Debug, Default)]
pub struct CacheStack {
    root: Option<Box<Node>>,
    counter: u64,
}

impl CacheStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects in the stack.
    pub fn len(&self) -> usize {
        len(&self.root)
    }

    /// True when the stack holds no objects.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Total bytes of all objects in the stack.
    pub fn total_bytes(&self) -> u64 {
        bytes(&self.root)
    }

    fn next_priority(&mut self) -> u64 {
        self.counter += 1;
        mix(self.counter)
    }

    /// Append at the bottom (used during the initialization phase).
    pub fn push_back(&mut self, entry: StackEntry) {
        let node = Node::new(entry, self.next_priority());
        self.root = merge(self.root.take(), Some(node));
    }

    /// Remove and return the top-of-stack entry.
    pub fn pop_front(&mut self) -> Option<StackEntry> {
        fn pop_leftmost(mut t: Box<Node>) -> (Option<Box<Node>>, StackEntry) {
            if let Some(l) = t.left.take() {
                let (rest, e) = pop_leftmost(l);
                t.left = rest;
                t.update();
                (Some(t), e)
            } else {
                (t.right.take(), t.entry)
            }
        }
        let root = self.root.take()?;
        let (rest, e) = pop_leftmost(root);
        self.root = rest;
        Some(e)
    }

    /// Peek at the top-of-stack entry.
    pub fn peek_front(&self) -> Option<&StackEntry> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some(&cur.entry)
    }

    /// Insert so that the bytes *above* the new entry total at least
    /// `byte_offset` (Algorithm 1 line 28). Offsets beyond the stack's
    /// total append at the bottom.
    pub fn insert_at_bytes(&mut self, byte_offset: u64, entry: StackEntry) {
        let node = Node::new(entry, self.next_priority());
        let (a, b) = split_bytes(self.root.take(), byte_offset);
        self.root = merge(merge(a, Some(node)), b);
    }

    /// Drain the stack top-to-bottom (test/diagnostic helper).
    pub fn drain_in_order(&mut self) -> Vec<StackEntry> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(e) = self.pop_front() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(obj: u64, size: u64) -> StackEntry {
        StackEntry { object: ObjectId(obj), popularity: 1, size }
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut s = CacheStack::new();
        for i in 0..10 {
            s.push_back(e(i, 10));
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.total_bytes(), 100);
        for i in 0..10 {
            assert_eq!(s.pop_front().unwrap().object, ObjectId(i));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut s = CacheStack::new();
        s.push_back(e(1, 5));
        s.push_back(e(2, 5));
        assert_eq!(s.peek_front().unwrap().object, ObjectId(1));
        assert_eq!(s.pop_front().unwrap().object, ObjectId(1));
        assert_eq!(s.peek_front().unwrap().object, ObjectId(2));
    }

    #[test]
    fn insert_at_zero_is_push_front() {
        let mut s = CacheStack::new();
        s.push_back(e(1, 10));
        s.insert_at_bytes(0, e(2, 10));
        assert_eq!(s.pop_front().unwrap().object, ObjectId(2));
    }

    #[test]
    fn insert_at_bytes_places_below_prefix() {
        let mut s = CacheStack::new();
        for i in 0..5 {
            s.push_back(e(i, 10)); // stack: 0,1,2,3,4 (10 B each)
        }
        // Offset 25 → minimal prefix ≥ 25 B is {0,1,2} (30 B) → insert after 2.
        s.insert_at_bytes(25, e(99, 10));
        let order: Vec<u64> = s.drain_in_order().iter().map(|x| x.object.0).collect();
        assert_eq!(order, vec![0, 1, 2, 99, 3, 4]);
    }

    #[test]
    fn insert_at_exact_boundary() {
        let mut s = CacheStack::new();
        for i in 0..3 {
            s.push_back(e(i, 10));
        }
        // Offset 20 → prefix {0,1} exactly.
        s.insert_at_bytes(20, e(99, 10));
        let order: Vec<u64> = s.drain_in_order().iter().map(|x| x.object.0).collect();
        assert_eq!(order, vec![0, 1, 99, 2]);
    }

    #[test]
    fn insert_beyond_total_appends() {
        let mut s = CacheStack::new();
        s.push_back(e(1, 10));
        s.insert_at_bytes(1_000_000, e(2, 10));
        let order: Vec<u64> = s.drain_in_order().iter().map(|x| x.object.0).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn byte_totals_maintained() {
        let mut s = CacheStack::new();
        s.push_back(e(1, 100));
        s.insert_at_bytes(50, e(2, 200));
        assert_eq!(s.total_bytes(), 300);
        s.pop_front();
        assert_eq!(s.total_bytes(), 200);
    }

    proptest! {
        #[test]
        fn prop_matches_naive_vec_model(
            ops in proptest::collection::vec((0u64..2000, 1u64..100, 0u8..3), 1..300)
        ) {
            // Reference model: a Vec with linear-scan insertion.
            let mut s = CacheStack::new();
            let mut model: Vec<StackEntry> = Vec::new();
            let mut next_obj = 0u64;
            for (offset, size, op) in ops {
                match op {
                    0 => {
                        let entry = e(next_obj, size);
                        next_obj += 1;
                        s.push_back(entry);
                        model.push(entry);
                    }
                    1 => {
                        let got = s.pop_front();
                        let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                        prop_assert_eq!(got, want);
                    }
                    _ => {
                        let entry = e(next_obj, size);
                        next_obj += 1;
                        s.insert_at_bytes(offset, entry);
                        // Find minimal prefix with bytes >= offset.
                        let mut acc = 0u64;
                        let mut pos = model.len();
                        if offset == 0 {
                            pos = 0;
                        } else {
                            for (i, m) in model.iter().enumerate() {
                                acc += m.size;
                                if acc >= offset {
                                    pos = i + 1;
                                    break;
                                }
                            }
                        }
                        model.insert(pos, entry);
                    }
                }
                prop_assert_eq!(s.len(), model.len());
                prop_assert_eq!(s.total_bytes(), model.iter().map(|m| m.size).sum::<u64>());
            }
            let drained = s.drain_in_order();
            prop_assert_eq!(drained, model);
        }
    }
}
