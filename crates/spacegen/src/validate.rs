//! Trace-fidelity statistics (§4.3, Fig. 6; Table 2; Fig. 2).
//!
//! * **object spread** — over how many locations each object is
//!   requested (Fig. 6a);
//! * **traffic spread** — object spread weighted by requests × size
//!   (Fig. 6b);
//! * **overlap matrices** — the fraction of one location's objects (and
//!   traffic) also accessed at another (Table 2);
//! * **overlap vs distance** — the Fig. 2 series relative to a reference
//!   location.

use crate::trace::{Location, Trace};
use starcdn_cache::object::ObjectId;
use std::collections::{HashMap, HashSet};

/// Per-object access summary used by the spread/overlap statistics.
fn object_locations(trace: &Trace, n: usize) -> HashMap<ObjectId, (Vec<u32>, u64)> {
    let mut map: HashMap<ObjectId, (Vec<u32>, u64)> = HashMap::new();
    for r in &trace.requests {
        let e = map.entry(r.object).or_insert_with(|| (vec![0; n], r.size));
        e.0[r.location.0 as usize] += 1;
    }
    map
}

/// CDF of object spread: `out[k-1]` = fraction of objects accessed from
/// at most `k` locations (Fig. 6a's axes).
pub fn object_spread_cdf(trace: &Trace, n: usize) -> Vec<f64> {
    let map = object_locations(trace, n);
    let mut counts = vec![0u64; n + 1];
    for (locs, _) in map.values() {
        let spread = locs.iter().filter(|&&p| p > 0).count();
        counts[spread] += 1;
    }
    cdf_from_counts(&counts[1..], map.len() as u64)
}

/// CDF of traffic spread: like object spread but weighted by
/// `requests × size` (Fig. 6b).
pub fn traffic_spread_cdf(trace: &Trace, n: usize) -> Vec<f64> {
    let map = object_locations(trace, n);
    let mut weights = vec![0f64; n + 1];
    let mut total = 0f64;
    for (locs, size) in map.values() {
        let spread = locs.iter().filter(|&&p| p > 0).count();
        let reqs: u32 = locs.iter().sum();
        let w = reqs as f64 * *size as f64;
        weights[spread] += w;
        total += w;
    }
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights[1..] {
        acc += w;
        cdf.push(if total > 0.0 { acc / total } else { 0.0 });
    }
    cdf
}

fn cdf_from_counts(counts: &[u64], total: u64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(counts.len());
    let mut acc = 0u64;
    for &c in counts {
        acc += c;
        cdf.push(if total > 0 { acc as f64 / total as f64 } else { 0.0 });
    }
    cdf
}

/// Pairwise overlap: `objects[a][b]` = fraction of objects accessed at
/// `a` that are also accessed at `b`; `traffic[a][b]` = fraction of `a`'s
/// traffic volume (requests × size) going to objects also accessed at
/// `b`. Diagonals are 1. This is Table 2's statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapMatrices {
    pub objects: Vec<Vec<f64>>,
    pub traffic: Vec<Vec<f64>>,
}

/// Compute both overlap matrices.
pub fn overlap_matrices(trace: &Trace, n: usize) -> OverlapMatrices {
    let map = object_locations(trace, n);
    // Per location: set of objects and traffic per object.
    let mut sets: Vec<HashSet<ObjectId>> = vec![HashSet::new(); n];
    let mut volume: Vec<HashMap<ObjectId, f64>> = vec![HashMap::new(); n];
    for (&obj, (locs, size)) in &map {
        for (i, &p) in locs.iter().enumerate() {
            if p > 0 {
                sets[i].insert(obj);
                volume[i].insert(obj, p as f64 * *size as f64);
            }
        }
    }
    let mut objects = vec![vec![0.0; n]; n];
    let mut traffic = vec![vec![0.0; n]; n];
    for a in 0..n {
        let total_objs = sets[a].len() as f64;
        let total_vol: f64 = volume[a].values().sum();
        for b in 0..n {
            if a == b {
                objects[a][b] = 1.0;
                traffic[a][b] = 1.0;
                continue;
            }
            let mut shared_objs = 0usize;
            let mut shared_vol = 0f64;
            for obj in &sets[a] {
                if sets[b].contains(obj) {
                    shared_objs += 1;
                    shared_vol += volume[a][obj];
                }
            }
            objects[a][b] = if total_objs > 0.0 { shared_objs as f64 / total_objs } else { 0.0 };
            traffic[a][b] = if total_vol > 0.0 { shared_vol / total_vol } else { 0.0 };
        }
    }
    OverlapMatrices { objects, traffic }
}

/// One point of the Fig. 2 series: overlap of a location with the
/// reference location, against their distance.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceOverlap {
    pub location: String,
    pub distance_km: f64,
    pub object_overlap: f64,
    pub traffic_overlap: f64,
}

/// Fig. 2: overlap of every other location with `reference`, ordered by
/// distance. Overlap direction is "fraction of the *other* location's
/// objects/traffic also present at the reference" (the paper plots the
/// share of New York content visible elsewhere and vice versa; we use
/// the other→reference direction, matching the figure's caption).
pub fn overlap_vs_distance(
    trace: &Trace,
    locations: &[Location],
    reference: &str,
) -> Vec<DistanceOverlap> {
    let n = locations.len();
    let m = overlap_matrices(trace, n);
    let r =
        locations.iter().position(|l| l.name == reference).expect("reference location in table");
    let mut out: Vec<DistanceOverlap> = locations
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != r)
        .map(|(i, loc)| DistanceOverlap {
            location: loc.name.clone(),
            distance_km: loc.distance_km(&locations[r]),
            object_overlap: m.objects[i][r],
            traffic_overlap: m.traffic[i][r],
        })
        .collect();
    out.sort_by(|a, b| a.distance_km.total_cmp(&b.distance_km));
    out
}

/// Maximum absolute difference between two CDFs (Kolmogorov–Smirnov
/// statistic), used by tests and the Fig. 6 experiment to quantify
/// synthetic-vs-production similarity.
pub fn cdf_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LocationId, Request};
    use starcdn_orbit::time::SimTime;

    fn req(obj: u64, size: u64, loc: u16) -> Request {
        Request { time: SimTime::ZERO, object: ObjectId(obj), size, location: LocationId(loc) }
    }

    #[test]
    fn object_spread_basic() {
        // obj1 at 2 locations, obj2 and obj3 at one each.
        let t = Trace::new(vec![req(1, 10, 0), req(1, 10, 1), req(2, 10, 0), req(3, 10, 2)]);
        let cdf = object_spread_cdf(&t, 3);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0] - 2.0 / 3.0).abs() < 1e-12, "{cdf:?}");
        assert!((cdf[1] - 1.0).abs() < 1e-12);
        assert!((cdf[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_spread_weights_by_volume() {
        // obj1: spread 2, traffic 3 reqs × 100 B = 300.
        // obj2: spread 1, traffic 1 req × 100 B = 100.
        let t = Trace::new(vec![req(1, 100, 0), req(1, 100, 0), req(1, 100, 1), req(2, 100, 0)]);
        let cdf = traffic_spread_cdf(&t, 2);
        assert!((cdf[0] - 0.25).abs() < 1e-12, "{cdf:?}");
        assert!((cdf[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_matrix_directional() {
        // Location 0 accesses {1, 2}; location 1 accesses {1}.
        let t = Trace::new(vec![req(1, 10, 0), req(2, 10, 0), req(1, 10, 1)]);
        let m = overlap_matrices(&t, 2);
        assert!((m.objects[0][1] - 0.5).abs() < 1e-12, "half of 0's objects at 1");
        assert!((m.objects[1][0] - 1.0).abs() < 1e-12, "all of 1's objects at 0");
        assert_eq!(m.objects[0][0], 1.0);
        assert_eq!(m.traffic[1][1], 1.0);
    }

    #[test]
    fn traffic_overlap_exceeds_object_overlap_for_hot_shared() {
        // Shared object is hot (4 reqs), private object cold (1 req).
        let t = Trace::new(vec![
            req(1, 100, 0),
            req(1, 100, 0),
            req(1, 100, 0),
            req(1, 100, 0),
            req(2, 100, 0),
            req(1, 100, 1),
        ]);
        let m = overlap_matrices(&t, 2);
        assert!((m.objects[0][1] - 0.5).abs() < 1e-12);
        assert!((m.traffic[0][1] - 0.8).abs() < 1e-12);
        assert!(m.traffic[0][1] > m.objects[0][1]);
    }

    #[test]
    fn overlap_vs_distance_sorted() {
        let locs = Location::akamai_nine();
        let t = Trace::new(vec![
            req(1, 10, 4), // New York
            req(1, 10, 3), // DC
            req(1, 10, 8), // Istanbul
            req(2, 10, 3),
        ]);
        let series = overlap_vs_distance(&t, &locs, "New York");
        assert_eq!(series.len(), 8);
        for w in series.windows(2) {
            assert!(w[0].distance_km <= w[1].distance_km);
        }
        let dc = series.iter().find(|d| d.location == "Washington DC").unwrap();
        assert!((dc.object_overlap - 0.5).abs() < 1e-12);
        let ist = series.iter().find(|d| d.location == "Istanbul").unwrap();
        assert!((ist.object_overlap - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reference location")]
    fn unknown_reference_panics() {
        let locs = Location::akamai_nine();
        overlap_vs_distance(&Trace::default(), &locs, "Atlantis");
    }

    #[test]
    fn cdf_distance_is_sup_norm() {
        assert!((cdf_distance(&[0.1, 0.5, 1.0], &[0.1, 0.7, 1.0]) - 0.2).abs() < 1e-12);
        assert_eq!(cdf_distance(&[], &[]), 0.0);
    }

    #[test]
    fn empty_trace_spreads_are_zero() {
        let cdf = object_spread_cdf(&Trace::default(), 3);
        assert_eq!(cdf, vec![0.0, 0.0, 0.0]);
        let m = overlap_matrices(&Trace::default(), 2);
        assert_eq!(m.objects[0][1], 0.0);
    }
}
