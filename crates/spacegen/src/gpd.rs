//! The Global Popularity Distribution (GPD).
//!
//! The GPD (§4.1) is the joint distribution `P(p₁, …, pₙ, s)` of an
//! object's popularity at each of the `n` locations together with its
//! size. It is what encodes *cross-location* structure — which objects
//! are shared, and how their popularity correlates across locations —
//! and is sampled during Algorithm 1's initialization phase and whenever
//! a generated object exhausts its request quota.
//!
//! As in TRAGEN/JEDI, the GPD is kept empirically: one record per object
//! of the production trace, sampled uniformly with replacement.

use crate::trace::Trace;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use starcdn_cache::object::ObjectId;
use std::collections::HashMap;

/// One GPD record: an object's per-location popularity vector and size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpdRecord {
    /// Requests at each location (length = number of locations).
    pub popularity: Vec<u32>,
    /// Object size, bytes.
    pub size: u64,
}

/// The empirical global popularity distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalPopularity {
    pub num_locations: usize,
    pub records: Vec<GpdRecord>,
}

impl GlobalPopularity {
    /// Extract the GPD from a multi-location production trace.
    pub fn from_trace(trace: &Trace, num_locations: usize) -> Self {
        let mut map: HashMap<ObjectId, GpdRecord> = HashMap::new();
        for r in &trace.requests {
            let e = map
                .entry(r.object)
                .or_insert_with(|| GpdRecord { popularity: vec![0; num_locations], size: r.size });
            e.popularity[r.location.0 as usize] += 1;
        }
        // Deterministic record order (HashMap iteration is not).
        let mut keyed: Vec<(ObjectId, GpdRecord)> = map.into_iter().collect();
        keyed.sort_by_key(|(id, _)| *id);
        GlobalPopularity { num_locations, records: keyed.into_iter().map(|(_, r)| r).collect() }
    }

    /// Sample one object definition (uniform over observed objects, as in
    /// TRAGEN's empirical-FD sampling).
    pub fn sample(&self, rng: &mut impl Rng) -> &GpdRecord {
        &self.records[rng.gen_range(0..self.records.len())]
    }

    /// Number of distinct objects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the GPD holds no objects.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of objects accessed from more than one location.
    pub fn shared_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let shared = self
            .records
            .iter()
            .filter(|r| r.popularity.iter().filter(|&&p| p > 0).count() > 1)
            .count();
        shared as f64 / self.records.len() as f64
    }

    /// Serialize to JSON (the paper publishes its traffic models for
    /// download; this is the equivalent export surface).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("GPD serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LocationId, Request};
    use starcdn_orbit::time::SimTime;

    fn req(obj: u64, size: u64, loc: u16) -> Request {
        Request { time: SimTime::ZERO, object: ObjectId(obj), size, location: LocationId(loc) }
    }

    fn sample_trace() -> Trace {
        Trace::new(vec![req(1, 10, 0), req(1, 10, 0), req(1, 10, 1), req(2, 20, 1), req(3, 30, 2)])
    }

    #[test]
    fn popularity_vectors_counted() {
        let gpd = GlobalPopularity::from_trace(&sample_trace(), 3);
        assert_eq!(gpd.len(), 3);
        // Records sorted by object id.
        assert_eq!(gpd.records[0], GpdRecord { popularity: vec![2, 1, 0], size: 10 });
        assert_eq!(gpd.records[1], GpdRecord { popularity: vec![0, 1, 0], size: 20 });
        assert_eq!(gpd.records[2], GpdRecord { popularity: vec![0, 0, 1], size: 30 });
    }

    #[test]
    fn shared_fraction_counts_multi_location_objects() {
        let gpd = GlobalPopularity::from_trace(&sample_trace(), 3);
        assert!((gpd.shared_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_stays_in_population() {
        let gpd = GlobalPopularity::from_trace(&sample_trace(), 3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let rec = gpd.sample(&mut rng);
            assert!(gpd.records.contains(rec));
        }
    }

    #[test]
    fn json_roundtrip() {
        let gpd = GlobalPopularity::from_trace(&sample_trace(), 3);
        let json = gpd.to_json();
        let back = GlobalPopularity::from_json(&json).unwrap();
        assert_eq!(back.records, gpd.records);
        assert_eq!(back.num_locations, 3);
    }

    #[test]
    fn empty_trace_empty_gpd() {
        let gpd = GlobalPopularity::from_trace(&Trace::default(), 3);
        assert!(gpd.is_empty());
        assert_eq!(gpd.shared_fraction(), 0.0);
    }
}
