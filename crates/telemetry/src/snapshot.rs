//! Frozen, deterministic telemetry state and its exporters.
//!
//! The JSON and CSV writers are hand-rolled: the shapes are small and
//! stable, and keeping this crate dependency-free guarantees nothing
//! heavyweight can leak into the instrumented hot paths.

use crate::hist::HistogramSnapshot;
use crate::metric::{Counter, Event, Histo, Stage};
use crate::span::SpanStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Plain-data telemetry state. Counters and histograms are sparse
/// (zero entries dropped) in enum order; spans and events are `BTreeMap`
/// timelines keyed `(kind, epoch)`, so equality and export order are
/// deterministic regardless of how many shards produced the data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Non-zero counters in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Non-empty histograms in [`Histo::ALL`] order.
    pub histograms: Vec<(Histo, HistogramSnapshot)>,
    /// Per-epoch stage timeline.
    pub spans: BTreeMap<(Stage, u64), SpanStats>,
    /// Per-epoch fault-event timeline.
    pub events: BTreeMap<(Event, u64), u64>,
}

impl TelemetrySnapshot {
    /// Value of a counter (0 if absent).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.iter().find(|&&(k, _)| k == c).map_or(0, |&(_, v)| v)
    }

    /// A histogram's snapshot, if any samples were recorded.
    pub fn histogram(&self, h: Histo) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| *k == h).map(|(_, s)| s)
    }

    /// Total time per stage, summed over the epoch timeline, in
    /// [`Stage::ALL`] order (stages with no spans are dropped).
    pub fn stage_totals(&self) -> Vec<(Stage, SpanStats)> {
        let mut totals: BTreeMap<Stage, SpanStats> = BTreeMap::new();
        for (&(stage, _), cell) in &self.spans {
            totals.entry(stage).or_default().merge(cell);
        }
        totals.into_iter().collect()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
    }

    /// Fold another snapshot into this one. Deterministic: counters and
    /// histograms stay in enum order, timelines merge by key, so
    /// `a.merge(b)` equals recording both inputs into one recorder.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        let mut counters: BTreeMap<Counter, u64> = self.counters.iter().copied().collect();
        for &(c, v) in &other.counters {
            *counters.entry(c).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();

        let mut histograms: BTreeMap<Histo, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (h, s) in &other.histograms {
            histograms.entry(*h).or_default().merge(s);
        }
        self.histograms = histograms.into_iter().collect();

        for (&key, cell) in &other.spans {
            self.spans.entry(key).or_default().merge(cell);
        }
        for (&key, &count) in &other.events {
            *self.events.entry(key).or_insert(0) += count;
        }
    }

    /// Serialise to a stable JSON document.
    ///
    /// Shape:
    /// ```json
    /// {
    ///   "counters": {"cache_hits": 7, ...},
    ///   "histograms": {"latency_us": {"count":.., "sum":.., "min":..,
    ///       "max":.., "mean":.., "p50":.., "p90":.., "p99":..,
    ///       "buckets": [[bit_len, samples], ...]}, ...},
    ///   "spans": [{"stage":"schedule","epoch":0,"count":..,
    ///       "total_ns":..,"max_ns":..}, ...],
    ///   "events": [{"event":"remap","epoch":4,"count":2}, ...]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (c, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", c.name());
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        for (i, (h, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.name(),
                s.count,
                s.sum,
                s.min.unwrap_or(0),
                s.max.unwrap_or(0),
                s.mean().unwrap_or(0.0),
                s.quantile(0.50).unwrap_or(0),
                s.quantile(0.90).unwrap_or(0),
                s.quantile(0.99).unwrap_or(0),
            );
            for (j, &(k, n)) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{k}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"spans\": [");
        for (i, (&(stage, epoch), cell)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"stage\": \"{}\", \"epoch\": {epoch}, \"count\": {}, \
                 \"total_ns\": {}, \"max_ns\": {}}}",
                stage.name(),
                cell.count,
                cell.total_ns,
                cell.max_ns,
            );
        }
        out.push_str(if self.spans.is_empty() { "],\n" } else { "\n  ],\n" });

        out.push_str("  \"events\": [");
        for (i, (&(event, epoch), &count)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"event\": \"{}\", \"epoch\": {epoch}, \"count\": {count}}}",
                event.name(),
            );
        }
        out.push_str(if self.events.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Serialise to CSV rows under a single uniform header:
    /// `kind,name,key,count,total,max`.
    ///
    /// * counters: `counter,<name>,,<value>,,`
    /// * histogram stats: `histogram,<name>,<stat>,<value>,,` for
    ///   `count|sum|min|max|p50|p90|p99`
    /// * histogram buckets: `bucket,<name>,<bit_len>,<samples>,,`
    /// * spans: `span,<stage>,<epoch>,<count>,<total_ns>,<max_ns>`
    /// * events: `event,<name>,<epoch>,<count>,,`
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("kind,name,key,count,total,max\n");
        for &(c, v) in &self.counters {
            let _ = writeln!(out, "counter,{},,{v},,", c.name());
        }
        for (h, s) in &self.histograms {
            let stats: [(&str, u64); 7] = [
                ("count", s.count),
                ("sum", s.sum),
                ("min", s.min.unwrap_or(0)),
                ("max", s.max.unwrap_or(0)),
                ("p50", s.quantile(0.50).unwrap_or(0)),
                ("p90", s.quantile(0.90).unwrap_or(0)),
                ("p99", s.quantile(0.99).unwrap_or(0)),
            ];
            for (stat, v) in stats {
                let _ = writeln!(out, "histogram,{},{stat},{v},,", h.name());
            }
            for &(k, n) in &s.buckets {
                let _ = writeln!(out, "bucket,{},{k},{n},,", h.name());
            }
        }
        for (&(stage, epoch), cell) in &self.spans {
            let _ = writeln!(
                out,
                "span,{},{epoch},{},{},{}",
                stage.name(),
                cell.count,
                cell.total_ns,
                cell.max_ns
            );
        }
        for (&(event, epoch), &count) in &self.events {
            let _ = writeln!(out, "event,{},{epoch},{count},,", event.name());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample() -> TelemetrySnapshot {
        let rec = MemoryRecorder::new();
        rec.add(Counter::CacheHits, 7);
        rec.add(Counter::RemappedRequests, 2);
        rec.observe(Histo::LatencyUs, 1500);
        rec.observe(Histo::LatencyUs, 900);
        rec.span_ns(Stage::Schedule, 0, 1000);
        rec.span_ns(Stage::Schedule, 1, 3000);
        rec.event(Event::Remap, 1, 2);
        rec.snapshot()
    }

    #[test]
    fn json_shape_is_stable() {
        let s = sample();
        let json = s.to_json();
        assert!(json.contains("\"cache_hits\": 7"), "{json}");
        assert!(json.contains("\"latency_us\""), "{json}");
        assert!(json.contains("\"stage\": \"schedule\", \"epoch\": 1"), "{json}");
        assert!(json.contains("\"event\": \"remap\", \"epoch\": 1, \"count\": 2"), "{json}");
        assert_eq!(json, sample().to_json(), "export is deterministic");
    }

    #[test]
    fn empty_json_is_well_formed() {
        let json = TelemetrySnapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn csv_rows_cover_everything() {
        let s = sample();
        let csv = s.to_csv();
        assert!(csv.starts_with("kind,name,key,count,total,max\n"));
        assert!(csv.contains("counter,cache_hits,,7,,"), "{csv}");
        assert!(csv.contains("histogram,latency_us,count,2,,"), "{csv}");
        assert!(csv.contains("span,schedule,1,1,3000,3000"), "{csv}");
        assert!(csv.contains("event,remap,1,2,,"), "{csv}");
    }

    #[test]
    fn merge_is_order_insensitive_for_commutative_state() {
        let a = sample();
        let rec = MemoryRecorder::new();
        rec.add(Counter::CacheMisses, 3);
        rec.observe(Histo::LatencyUs, 40);
        rec.span_ns(Stage::Schedule, 0, 500);
        let b = rec.snapshot();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter(Counter::CacheHits), 7);
        assert_eq!(ab.counter(Counter::CacheMisses), 3);
        assert_eq!(ab.histogram(Histo::LatencyUs).unwrap().count, 3);
        assert_eq!(ab.spans[&(Stage::Schedule, 0)].count, 2);
    }

    #[test]
    fn stage_totals_aggregate_over_epochs() {
        let s = sample();
        let totals = s.stage_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, Stage::Schedule);
        assert_eq!(totals[0].1.count, 2);
        assert_eq!(totals[0].1.total_ns, 4000);
    }
}
