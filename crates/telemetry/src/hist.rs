//! Lock-free log₂-bucketed histograms.
//!
//! Bucket `k` holds values whose bit length is `k`: bucket 0 is exactly
//! `{0}`, bucket 1 is `{1}`, bucket 2 is `{2,3}`, …, bucket 64 is
//! `[2⁶³, 2⁶⁴)`. One `fetch_add` per sample, no allocation, ~2× value
//! resolution — the same trade HDR-style recorders make at their
//! coarsest setting, and plenty for "where did the time go" questions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: bit lengths 0..=64.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index (bit length) of a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `k` can hold (its reported upper bound).
fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// A concurrent log₂ histogram. All methods take `&self`; recording is
/// relaxed atomics only.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold a frozen snapshot back into this live histogram — exact:
    /// bucket counts, count, sum, min and max all combine losslessly.
    pub fn absorb(&self, s: &HistogramSnapshot) {
        if s.count == 0 {
            return;
        }
        for &(k, n) in &s.buckets {
            self.buckets[k as usize].fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(s.count, Ordering::Relaxed);
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
        if let Some(m) = s.min {
            self.min.fetch_min(m, Ordering::Relaxed);
        }
        if let Some(m) = s.max {
            self.max.fetch_max(m, Ordering::Relaxed);
        }
    }

    /// Freeze into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = (0..NUM_BUCKETS)
            .filter_map(|k| {
                let n = self.buckets[k].load(Ordering::Relaxed);
                (n > 0).then_some((k as u8, n))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data histogram state: sparse `(bucket, count)` pairs in bucket
/// order plus exact count/sum/min/max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bit_length, samples)`, ascending.
    pub buckets: Vec<(u8, u64)>,
    pub count: u64,
    pub sum: u64,
    pub min: Option<u64>,
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// `q`-th sample, clamped to the exact observed min/max. Non-finite
    /// or out-of-range `q` clamps into `[0, 1]`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_finite() { q.clamp(0.0, 1.0) } else { 0.0 };
        // Rank of the target sample, 1-based.
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(k, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let hi = bucket_upper(k as usize);
                return Some(hi.clamp(self.min.unwrap_or(0), self.max.unwrap_or(u64::MAX)));
            }
        }
        self.max
    }

    /// Merge another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(u8, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ka, na)), Some(&&(kb, nb))) => {
                    use std::cmp::Ordering::*;
                    match ka.cmp(&kb) {
                        Less => {
                            merged.push((ka, na));
                            a.next();
                        }
                        Greater => {
                            merged.push((kb, nb));
                            b.next();
                        }
                        Equal => {
                            merged.push((ka, na + nb));
                            a.next();
                            b.next();
                        }
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        };
        self.max = match (self.max, other.max) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_snapshot() {
        let h = LogHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = LogHistogram::new();
        h.record(37);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, Some(37));
        assert_eq!(s.max, Some(37));
        // Bucket upper bound is 63 but clamping to observed max fixes it.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile(q), Some(37), "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = LogHistogram::new();
        for v in 0..1000u64 {
            h.record(v * 7);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q).unwrap();
            assert!(v >= prev, "quantile must be monotone");
            assert!(v >= s.min.unwrap() && v <= s.max.unwrap());
            prev = v;
        }
        assert_eq!(s.quantile(1.0), Some(999 * 7), "p100 is the exact max");
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0), "NaN clamps low, no panic");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let all = LogHistogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 11 + 1);
            all.record(v * 11 + 1);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = LogHistogram::new();
        a.record(5);
        let mut s = a.snapshot();
        s.merge(&HistogramSnapshot::default());
        assert_eq!(s, a.snapshot());
        let mut e = HistogramSnapshot::default();
        e.merge(&a.snapshot());
        assert_eq!(e, a.snapshot());
    }
}
