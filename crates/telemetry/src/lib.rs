//! Observability for the StarCDN simulation pipeline.
//!
//! The evaluation in the paper (Tables 1–3, Figs 6–13) is entirely
//! metrics-driven, but end-of-run aggregates say nothing about *where*
//! time or misses go inside a run. This crate provides the missing
//! instrumentation layer:
//!
//! * cheap atomic [`Counter`]s and log₂-bucketed [`Histo`]grams
//!   (latency µs, ISL hops, object bytes, queue depths),
//! * scoped [`SpanTimer`]s for the pipeline stages ([`Stage`]) with a
//!   per-epoch timeline,
//! * epoch-stamped fault [`Event`]s (remap, reroute, cold miss, churn),
//! * a deterministic [`TelemetrySnapshot`] with JSON and CSV export.
//!
//! Everything funnels through the [`Recorder`] trait. The default
//! implementation of every method is a no-op and [`Noop`] is a unit
//! struct, so a `&Noop` on the hot path costs one predictable branch on
//! [`Recorder::is_enabled`] (callers hoist it out of per-request loops).
//! [`MemoryRecorder`] is the real sink: lock-free atomics for counters
//! and histogram buckets, a mutex-guarded `BTreeMap` for the (cold)
//! span/event timelines.
//!
//! **Determinism rule.** Telemetry must never change simulation output.
//! Parallel consumers (the replayer's worker shards) each get their own
//! `MemoryRecorder`; shards are merged in worker-index order into a
//! single [`TelemetrySnapshot`] whose maps are `BTreeMap`s, so the
//! merged snapshot — like the simulation metrics themselves — is
//! bit-for-bit reproducible at any worker count.
//!
//! This crate deliberately has **zero dependencies**: nothing here can
//! drag a serialisation framework into the hot path, and the exporters
//! hand-roll their (small, stable) JSON/CSV shapes.

mod hist;
mod metric;
mod recorder;
mod snapshot;
mod span;

pub use hist::{HistogramSnapshot, LogHistogram, NUM_BUCKETS};
pub use metric::{Counter, Event, Histo, Stage};
pub use recorder::{MemoryRecorder, Noop, Recorder};
pub use snapshot::TelemetrySnapshot;
pub use span::{SpanStats, SpanTimer};
