//! Scoped stage timers and their aggregate statistics.

use crate::metric::Stage;
use crate::recorder::Recorder;
use std::time::Instant;

/// Aggregate timing for one `(stage, epoch)` timeline cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Spans recorded into this cell.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// One observed span.
    pub fn one(ns: u64) -> Self {
        SpanStats { count: 1, total_ns: ns, max_ns: ns }
    }

    /// Fold another cell into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean span length, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A drop-guard that times a pipeline stage and reports it to a
/// [`Recorder`] keyed by `(stage, epoch)`.
///
/// When the recorder is disabled ([`Recorder::is_enabled`] is false) the
/// guard never reads the clock, so leaving these in hot code costs one
/// branch per scope, not one `Instant::now()` pair.
#[must_use = "a span timer measures the scope it lives in"]
pub struct SpanTimer<'a> {
    rec: &'a dyn Recorder,
    stage: Stage,
    epoch: u64,
    started: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Start timing `stage` for `epoch` (or any other u64 key, e.g. the
    /// replayer keys `ReplayShard` spans by shard index).
    pub fn start(rec: &'a dyn Recorder, stage: Stage, epoch: u64) -> Self {
        let started = rec.is_enabled().then(Instant::now);
        SpanTimer { rec, stage, epoch, started }
    }

    /// Stop early (equivalent to dropping the guard).
    pub fn stop(self) {}
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            self.rec.span_ns(self.stage, self.epoch, t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Noop};

    #[test]
    fn noop_timer_never_records() {
        let t = SpanTimer::start(&Noop, Stage::Schedule, 3);
        assert!(t.started.is_none(), "disabled recorder must not read the clock");
        t.stop();
    }

    #[test]
    fn memory_timer_records_on_drop() {
        let rec = MemoryRecorder::new();
        {
            let _t = SpanTimer::start(&rec, Stage::Visibility, 7);
        }
        let snap = rec.snapshot();
        let cell = snap.spans.get(&(Stage::Visibility, 7)).expect("span recorded");
        assert_eq!(cell.count, 1);
        assert_eq!(cell.max_ns, cell.total_ns);
    }

    #[test]
    fn span_stats_merge() {
        let mut a = SpanStats::one(10);
        a.merge(&SpanStats::one(30));
        assert_eq!(a, SpanStats { count: 2, total_ns: 40, max_ns: 30 });
        assert!((a.mean_ns() - 20.0).abs() < 1e-12);
        assert_eq!(SpanStats::default().mean_ns(), 0.0);
    }
}
