//! The [`Recorder`] trait and its two implementations.

use crate::hist::LogHistogram;
use crate::metric::{Counter, Event, Histo, Stage};
use crate::snapshot::TelemetrySnapshot;
use crate::span::SpanStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The instrumentation sink threaded through the pipeline.
///
/// Every method takes `&self` and defaults to a no-op, so instrumented
/// code paths pay nothing when handed a [`Noop`]. Hot loops should hoist
/// `is_enabled()` into a local and skip the per-item calls entirely.
///
/// `Send + Sync` is a supertrait: recorders cross the replayer's scoped
/// worker threads by reference.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Callers may use this to
    /// skip instrumentation work (metric computation, clock reads).
    fn is_enabled(&self) -> bool {
        false
    }

    /// Add `n` to a counter.
    fn add(&self, _counter: Counter, _n: u64) {}

    /// Record one histogram sample.
    fn observe(&self, _histo: Histo, _value: u64) {}

    /// Record a completed stage span of `ns` nanoseconds at `epoch`.
    fn span_ns(&self, _stage: Stage, _epoch: u64, _ns: u64) {}

    /// Record `count` occurrences of an epoch-stamped fault event.
    fn event(&self, _event: Event, _epoch: u64, _count: u64) {}

    /// Fold an already-merged snapshot in (the replayer merges its
    /// per-worker shards deterministically, then absorbs once).
    fn absorb(&self, _snapshot: &TelemetrySnapshot) {}
}

/// The default recorder: keeps nothing, costs one predictable branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Recorder for Noop {}

/// An in-memory recorder: lock-free atomics for counters and histogram
/// buckets; mutex-guarded `BTreeMap`s for the cold span/event timelines
/// (touched once per epoch, not per request).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: [AtomicU64; Counter::ALL.len()],
    histograms: [LogHistogram; Histo::ALL.len()],
    spans: Mutex<BTreeMap<(Stage, u64), SpanStats>>,
    events: Mutex<BTreeMap<(Event, u64), u64>>,
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Freeze everything into a deterministic plain-data snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = Counter::ALL
            .iter()
            .filter_map(|&c| {
                let v = self.counters[c as usize].load(Ordering::Relaxed);
                (v > 0).then_some((c, v))
            })
            .collect();
        let histograms = Histo::ALL
            .iter()
            .filter_map(|&h| {
                let s = self.histograms[h as usize].snapshot();
                (!s.is_empty()).then_some((h, s))
            })
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
            spans: self.spans.lock().unwrap().clone(),
            events: self.events.lock().unwrap().clone(),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, histo: Histo, value: u64) {
        self.histograms[histo as usize].record(value);
    }

    fn span_ns(&self, stage: Stage, epoch: u64, ns: u64) {
        let mut spans = self.spans.lock().unwrap();
        spans.entry((stage, epoch)).or_default().merge(&SpanStats::one(ns));
    }

    fn event(&self, event: Event, epoch: u64, count: u64) {
        if count == 0 {
            return;
        }
        let mut events = self.events.lock().unwrap();
        *events.entry((event, epoch)).or_insert(0) += count;
    }

    fn absorb(&self, snapshot: &TelemetrySnapshot) {
        for &(c, v) in &snapshot.counters {
            self.add(c, v);
        }
        for (h, s) in &snapshot.histograms {
            self.histograms[*h as usize].absorb(s);
        }
        for (&(stage, epoch), cell) in &snapshot.spans {
            let mut spans = self.spans.lock().unwrap();
            spans.entry((stage, epoch)).or_default().merge(cell);
        }
        for (&(event, epoch), &count) in &snapshot.events {
            self.event(event, epoch, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let rec = Noop;
        assert!(!rec.is_enabled());
        rec.add(Counter::CacheHits, 5);
        rec.observe(Histo::LatencyUs, 100);
        rec.span_ns(Stage::Schedule, 0, 1000);
        rec.event(Event::Remap, 3, 2);
    }

    #[test]
    fn memory_recorder_round_trips() {
        let rec = MemoryRecorder::new();
        assert!(rec.is_enabled());
        rec.add(Counter::CacheHits, 3);
        rec.add(Counter::CacheHits, 4);
        rec.observe(Histo::IslHops, 5);
        rec.span_ns(Stage::CacheAccess, 2, 500);
        rec.span_ns(Stage::CacheAccess, 2, 700);
        rec.event(Event::ColdMiss, 9, 11);
        rec.event(Event::ColdMiss, 9, 0);

        assert_eq!(rec.counter(Counter::CacheHits), 7);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::CacheHits), 7);
        assert_eq!(snap.counter(Counter::CacheMisses), 0);
        assert_eq!(snap.histogram(Histo::IslHops).unwrap().count, 1);
        let cell = snap.spans[&(Stage::CacheAccess, 2)];
        assert_eq!(cell, SpanStats { count: 2, total_ns: 1200, max_ns: 700 });
        assert_eq!(snap.events[&(Event::ColdMiss, 9)], 11);
        assert_eq!(snap.events.len(), 1, "zero-count events are dropped");
    }

    #[test]
    fn absorb_equals_direct_recording() {
        let shard_a = MemoryRecorder::new();
        let shard_b = MemoryRecorder::new();
        let direct = MemoryRecorder::new();
        for v in [3u64, 9, 100, 4096] {
            shard_a.observe(Histo::ObjectBytes, v);
            direct.observe(Histo::ObjectBytes, v);
        }
        for v in [1u64, 9, 65535] {
            shard_b.observe(Histo::ObjectBytes, v);
            direct.observe(Histo::ObjectBytes, v);
        }
        shard_a.add(Counter::CacheMisses, 2);
        shard_b.add(Counter::CacheMisses, 5);
        direct.add(Counter::CacheMisses, 7);
        shard_a.span_ns(Stage::ReplayShard, 0, 50);
        shard_b.span_ns(Stage::ReplayShard, 1, 80);
        direct.span_ns(Stage::ReplayShard, 0, 50);
        direct.span_ns(Stage::ReplayShard, 1, 80);
        shard_a.event(Event::Reroute, 4, 1);
        shard_b.event(Event::Reroute, 4, 2);
        direct.event(Event::Reroute, 4, 3);

        // Deterministic merge: shard order, BTreeMap keys.
        let mut merged = shard_a.snapshot();
        merged.merge(&shard_b.snapshot());
        let sink = MemoryRecorder::new();
        sink.absorb(&merged);
        assert_eq!(sink.snapshot(), direct.snapshot());
    }
}
