//! The fixed metric vocabulary.
//!
//! Counters, histograms, stages and events are closed enums rather than
//! string keys: recording indexes a fixed-size atomic array (no hashing,
//! no allocation on the hot path) and snapshots order deterministically
//! by enum discriminant.

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Requests that resolved to a live owner and were served.
    RequestsRouted,
    /// Requests arriving while the user had no visible satellite.
    RequestsUnreachable,
    /// Requests whose owner (and every remap candidate) was dead.
    RequestsUnroutable,
    /// Cache hits (owner or relay neighbour).
    CacheHits,
    /// Cache misses (served via ground uplink).
    CacheMisses,
    /// Hits served by a relay neighbour rather than the owner itself.
    RelayHits,
    /// Requests remapped off a dead bucket owner.
    RemappedRequests,
    /// Extra ISL hops taken by fault-avoiding detour routes.
    RerouteExtraHops,
    /// Misses attributed to a post-restart cold cache.
    ColdRestartMisses,
    /// Satellite caches wiped by a down event.
    CacheWipes,
    /// Satellites marked cold by an up event.
    ColdMarks,
    /// Scheduler epochs processed.
    ScheduleEpochs,
    /// Timed fault events applied at epoch boundaries.
    FaultEventsApplied,
    /// Prefetch rounds executed at epoch boundaries.
    PrefetchRounds,
    /// BFS shortest-path computations.
    BfsRoutes,
    /// Admission attempts refused by the capacity ledger.
    RequestsShed,
    /// Retry attempts beyond the first (replica probes under overload).
    RetryAttempts,
    /// Requests served origin-direct after exhausting every replica.
    OriginFallbacks,
    /// Requests dropped after the retry policy ran out.
    RequestsDropped,
    /// Requests whose live owner was unreachable across a partitioned
    /// grid, served degraded over the origin bent pipe.
    RequestsPartitioned,
    /// Requests coalesced onto an in-flight origin fetch (delayed hits).
    DelayedHits,
    /// Followers aboard origin fetches that completed and retired.
    CoalescedRequests,
    /// Origin fetches retired (completed and admitted) by the
    /// delayed-hit model.
    FetchesRetired,
    /// Protocol frames sent by the serving-plane router (first sends
    /// and resends both count).
    NetFramesSent,
    /// Frames re-sent after a timeout or reconnect resync.
    NetFramesResent,
    /// Per-frame deadline expiries observed by the router.
    NetTimeouts,
    /// Router reconnect attempts (initial connects excluded).
    NetReconnects,
    /// Circuit-breaker transitions into the open state.
    NetCircuitOpens,
    /// Duplicate frames dropped by shard-server sequence dedup.
    NetDuplicatesDropped,
    /// Requests degraded to the origin bent pipe because a shard's
    /// circuit stayed open.
    NetRequestsDegraded,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 30] = [
        Counter::RequestsRouted,
        Counter::RequestsUnreachable,
        Counter::RequestsUnroutable,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::RelayHits,
        Counter::RemappedRequests,
        Counter::RerouteExtraHops,
        Counter::ColdRestartMisses,
        Counter::CacheWipes,
        Counter::ColdMarks,
        Counter::ScheduleEpochs,
        Counter::FaultEventsApplied,
        Counter::PrefetchRounds,
        Counter::BfsRoutes,
        Counter::RequestsShed,
        Counter::RetryAttempts,
        Counter::OriginFallbacks,
        Counter::RequestsDropped,
        Counter::RequestsPartitioned,
        Counter::DelayedHits,
        Counter::CoalescedRequests,
        Counter::FetchesRetired,
        Counter::NetFramesSent,
        Counter::NetFramesResent,
        Counter::NetTimeouts,
        Counter::NetReconnects,
        Counter::NetCircuitOpens,
        Counter::NetDuplicatesDropped,
        Counter::NetRequestsDegraded,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RequestsRouted => "requests_routed",
            Counter::RequestsUnreachable => "requests_unreachable",
            Counter::RequestsUnroutable => "requests_unroutable",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::RelayHits => "relay_hits",
            Counter::RemappedRequests => "remapped_requests",
            Counter::RerouteExtraHops => "reroute_extra_hops",
            Counter::ColdRestartMisses => "cold_restart_misses",
            Counter::CacheWipes => "cache_wipes",
            Counter::ColdMarks => "cold_marks",
            Counter::ScheduleEpochs => "schedule_epochs",
            Counter::FaultEventsApplied => "fault_events_applied",
            Counter::PrefetchRounds => "prefetch_rounds",
            Counter::BfsRoutes => "bfs_routes",
            Counter::RequestsShed => "requests_shed",
            Counter::RetryAttempts => "retry_attempts",
            Counter::OriginFallbacks => "origin_fallbacks",
            Counter::RequestsDropped => "requests_dropped",
            Counter::RequestsPartitioned => "requests_partitioned",
            Counter::DelayedHits => "delayed_hits",
            Counter::CoalescedRequests => "coalesced_requests",
            Counter::FetchesRetired => "fetches_retired",
            Counter::NetFramesSent => "net_frames_sent",
            Counter::NetFramesResent => "net_frames_resent",
            Counter::NetTimeouts => "net_timeouts",
            Counter::NetReconnects => "net_reconnects",
            Counter::NetCircuitOpens => "net_circuit_opens",
            Counter::NetDuplicatesDropped => "net_duplicates_dropped",
            Counter::NetRequestsDegraded => "net_requests_degraded",
        }
    }
}

/// Log₂-bucketed value distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Histo {
    /// End-to-end request latency, microseconds.
    LatencyUs,
    /// ISL hops per routed request (intra + inter plane).
    IslHops,
    /// Object size, bytes.
    ObjectBytes,
    /// Work-queue depth (entries per epoch run / per replay shard).
    QueueDepth,
    /// One-way user↔satellite propagation delay, microseconds.
    GslDelayUs,
    /// Hop count of BFS-computed detour paths.
    BfsPathHops,
    /// Retry attempts consumed per request under overload (0 = admitted
    /// first try).
    RetryCount,
    /// Residual fetch wait charged to a delayed hit, in epochs.
    ResidualWaitEpochs,
    /// Round trip from frame send to its cumulative ack, microseconds.
    NetAckRttUs,
    /// Encoded frame size on the wire, bytes.
    NetFrameBytes,
}

impl Histo {
    /// Every histogram, in snapshot order.
    pub const ALL: [Histo; 10] = [
        Histo::LatencyUs,
        Histo::IslHops,
        Histo::ObjectBytes,
        Histo::QueueDepth,
        Histo::GslDelayUs,
        Histo::BfsPathHops,
        Histo::RetryCount,
        Histo::ResidualWaitEpochs,
        Histo::NetAckRttUs,
        Histo::NetFrameBytes,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Histo::LatencyUs => "latency_us",
            Histo::IslHops => "isl_hops",
            Histo::ObjectBytes => "object_bytes",
            Histo::QueueDepth => "queue_depth",
            Histo::GslDelayUs => "gsl_delay_us",
            Histo::BfsPathHops => "bfs_path_hops",
            Histo::RetryCount => "retry_count",
            Histo::ResidualWaitEpochs => "residual_wait_epochs",
            Histo::NetAckRttUs => "net_ack_rtt_us",
            Histo::NetFrameBytes => "net_frame_bytes",
        }
    }
}

/// Pipeline stages timed by [`SpanTimer`](crate::SpanTimer)s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Orbital propagation (snapshot advance).
    Propagate,
    /// Visibility / top-k elevation selection.
    Visibility,
    /// Per-epoch link scheduling.
    Schedule,
    /// Replayer sequential pre-scan (partition by owner).
    PreScan,
    /// Consistent-hash owner resolution + routing.
    ResolveOwner,
    /// Cache access (hit/miss + admission) per epoch.
    CacheAccess,
    /// One replayer worker shard (keyed by shard index, not epoch).
    ReplayShard,
    /// Deterministic merge of worker results.
    Merge,
}

impl Stage {
    /// Every stage, in snapshot order.
    pub const ALL: [Stage; 8] = [
        Stage::Propagate,
        Stage::Visibility,
        Stage::Schedule,
        Stage::PreScan,
        Stage::ResolveOwner,
        Stage::CacheAccess,
        Stage::ReplayShard,
        Stage::Merge,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Propagate => "propagate",
            Stage::Visibility => "visibility",
            Stage::Schedule => "schedule",
            Stage::PreScan => "pre_scan",
            Stage::ResolveOwner => "resolve_owner",
            Stage::CacheAccess => "cache_access",
            Stage::ReplayShard => "replay_shard",
            Stage::Merge => "merge",
        }
    }
}

/// Epoch-stamped fault-path events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Event {
    /// Satellites that went down at this epoch boundary.
    SatDown,
    /// Satellites that recovered (cold) at this epoch boundary.
    SatUp,
    /// ISL links cut at this epoch boundary.
    LinkDown,
    /// ISL links restored at this epoch boundary.
    LinkUp,
    /// Requests remapped off a dead owner during this epoch.
    Remap,
    /// Requests detoured around cut links during this epoch.
    Reroute,
    /// Misses charged to cold restarted caches during this epoch.
    ColdMiss,
    /// A corrupt/torn checkpoint was skipped in favor of an older one
    /// during resume (the epoch key is the skipped checkpoint's epoch).
    CheckpointRestoreFallback,
}

impl Event {
    /// Every event kind, in snapshot order.
    pub const ALL: [Event; 8] = [
        Event::SatDown,
        Event::SatUp,
        Event::LinkDown,
        Event::LinkUp,
        Event::Remap,
        Event::Reroute,
        Event::ColdMiss,
        Event::CheckpointRestoreFallback,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Event::SatDown => "sat_down",
            Event::SatUp => "sat_up",
            Event::LinkDown => "link_down",
            Event::LinkUp => "link_up",
            Event::Remap => "remap",
            Event::Reroute => "reroute",
            Event::ColdMiss => "cold_miss",
            Event::CheckpointRestoreFallback => "checkpoint_restore_fallback",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arrays_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{}", c.name());
        }
        for (i, h) in Histo::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "{}", h.name());
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "{}", s.name());
        }
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(*e as usize, i, "{}", e.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()));
        }
        for h in Histo::ALL {
            assert!(seen.insert(h.name()));
        }
        for s in Stage::ALL {
            assert!(seen.insert(s.name()));
        }
        for e in Event::ALL {
            assert!(seen.insert(e.name()));
        }
    }
}
