//! Coordinate frames and conversions.
//!
//! Three frames are used:
//!
//! * **ECI** (Earth-Centred Inertial): satellites are propagated here.
//! * **ECEF** (Earth-Centred Earth-Fixed): rotates with the Earth; ground
//!   stations and users live here.
//! * **Geodetic**: latitude/longitude/altitude on a spherical Earth model.
//!
//! A spherical Earth (mean radius) is used throughout: the ~21 km
//! equatorial bulge changes slant ranges by well under 1 % at the 550 km
//! Starlink altitude, far below the fidelity the CDN simulation needs.

use crate::constants::{EARTH_RADIUS_KM, EARTH_ROTATION_RAD_S};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A position in the Earth-Centred Inertial frame, kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Eci {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A position in the Earth-Centred Earth-Fixed frame, kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ecef {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A geodetic position: latitude/longitude in radians, altitude in km
/// above the spherical Earth surface.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Geodetic {
    pub lat_rad: f64,
    pub lon_rad: f64,
    pub alt_km: f64,
}

impl Eci {
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Eci { x, y, z }
    }

    /// Euclidean norm in km.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Rotate this inertial position into the Earth-fixed frame at time `t`.
    ///
    /// At `t = 0` the two frames are aligned; the Earth then rotates
    /// eastward at the sidereal rate, so ECEF = Rz(-θ) · ECI with
    /// θ = ω⊕·t.
    pub fn to_ecef(&self, t: SimTime) -> Ecef {
        let theta = EARTH_ROTATION_RAD_S * t.as_secs_f64();
        let (s, c) = theta.sin_cos();
        Ecef { x: c * self.x + s * self.y, y: -s * self.x + c * self.y, z: self.z }
    }
}

impl Ecef {
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Ecef { x, y, z }
    }

    /// Euclidean norm in km.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Straight-line (slant) distance to another ECEF point, km.
    pub fn distance_km(&self, other: &Ecef) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Convert to geodetic coordinates on the spherical Earth model.
    pub fn to_geodetic(&self) -> Geodetic {
        let r = self.norm();
        Geodetic {
            lat_rad: (self.z / r).asin(),
            lon_rad: self.y.atan2(self.x),
            alt_km: r - EARTH_RADIUS_KM,
        }
    }
}

impl Geodetic {
    /// Construct from degrees latitude/longitude and km altitude.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, alt_km: f64) -> Self {
        Geodetic { lat_rad: lat_deg.to_radians(), lon_rad: lon_deg.to_radians(), alt_km }
    }

    /// Latitude in degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_rad.to_degrees()
    }

    /// Longitude in degrees, normalized to (-180, 180].
    pub fn lon_deg(&self) -> f64 {
        let mut d = self.lon_rad.to_degrees() % 360.0;
        if d > 180.0 {
            d -= 360.0;
        } else if d <= -180.0 {
            d += 360.0;
        }
        d
    }

    /// Convert to ECEF, km.
    pub fn to_ecef(&self) -> Ecef {
        let r = EARTH_RADIUS_KM + self.alt_km;
        let (slat, clat) = self.lat_rad.sin_cos();
        let (slon, clon) = self.lon_rad.sin_cos();
        Ecef { x: r * clat * clon, y: r * clat * slon, z: r * slat }
    }

    /// Great-circle (haversine) surface distance to another point, km.
    ///
    /// Altitudes are ignored: this is the geographic distance used for
    /// e.g. Fig. 2's "overlap vs distance from New York" analysis.
    pub fn haversine_km(&self, other: &Geodetic) -> f64 {
        let dlat = other.lat_rad - self.lat_rad;
        let dlon = other.lon_rad - self.lon_rad;
        let a = (dlat / 2.0).sin().powi(2)
            + self.lat_rad.cos() * other.lat_rad.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-6;

    #[test]
    fn geodetic_ecef_roundtrip_at_landmarks() {
        for &(lat, lon) in &[(0.0, 0.0), (40.7128, -74.0060), (-33.86, 151.21), (89.0, 10.0)] {
            let g = Geodetic::from_degrees(lat, lon, 0.0);
            let back = g.to_ecef().to_geodetic();
            assert!((back.lat_deg() - lat).abs() < EPS, "lat {lat}");
            assert!((back.lon_deg() - lon).abs() < EPS, "lon {lon}");
            assert!(back.alt_km.abs() < EPS);
        }
    }

    #[test]
    fn equator_prime_meridian_is_x_axis() {
        let e = Geodetic::from_degrees(0.0, 0.0, 0.0).to_ecef();
        assert!((e.x - EARTH_RADIUS_KM).abs() < EPS);
        assert!(e.y.abs() < EPS && e.z.abs() < EPS);
    }

    #[test]
    fn north_pole_is_z_axis() {
        let e = Geodetic::from_degrees(90.0, 0.0, 0.0).to_ecef();
        assert!((e.z - EARTH_RADIUS_KM).abs() < EPS);
        assert!(e.x.abs() < EPS && e.y.abs() < EPS);
    }

    #[test]
    fn eci_to_ecef_identity_at_epoch() {
        let p = Eci::new(7000.0, 100.0, -3.0);
        let e = p.to_ecef(SimTime::ZERO);
        assert!((e.x - p.x).abs() < EPS && (e.y - p.y).abs() < EPS && (e.z - p.z).abs() < EPS);
    }

    #[test]
    fn eci_point_appears_to_move_west_in_ecef() {
        // A fixed inertial point above the equator drifts westward (longitude
        // decreases) in the rotating frame.
        let p = Eci::new(7000.0, 0.0, 0.0);
        let lon0 = p.to_ecef(SimTime::ZERO).to_geodetic().lon_deg();
        let lon1 = p.to_ecef(SimTime::from_mins(10)).to_geodetic().lon_deg();
        assert!(lon1 < lon0, "{lon1} !< {lon0}");
    }

    #[test]
    fn sidereal_day_returns_to_start() {
        let p = Eci::new(7000.0, 123.0, 456.0);
        let sidereal_day_ms =
            (2.0 * std::f64::consts::PI / EARTH_ROTATION_RAD_S * 1000.0).round() as u64;
        let e0 = p.to_ecef(SimTime::ZERO);
        let e1 = p.to_ecef(SimTime::from_millis(sidereal_day_ms));
        assert!(e0.distance_km(&e1) < 0.01, "drift {}", e0.distance_km(&e1));
    }

    #[test]
    fn haversine_known_distances() {
        let nyc = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        let london = Geodetic::from_degrees(51.5074, -0.1278, 0.0);
        let d = nyc.haversine_km(&london);
        // True great-circle distance is ~5570 km.
        assert!((d - 5570.0).abs() < 60.0, "NYC-London = {d}");
        assert!(nyc.haversine_km(&nyc).abs() < EPS);
    }

    #[test]
    fn lon_deg_normalization() {
        let g = Geodetic { lat_rad: 0.0, lon_rad: 3.5 * std::f64::consts::PI, alt_km: 0.0 };
        let d = g.lon_deg();
        assert!((-180.0..=180.0).contains(&d), "{d}");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_geodetic(lat in -89.9f64..89.9, lon in -179.9f64..179.9, alt in 0.0f64..2000.0) {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let back = g.to_ecef().to_geodetic();
            prop_assert!((back.lat_deg() - lat).abs() < 1e-6);
            prop_assert!((back.lon_deg() - lon).abs() < 1e-6);
            prop_assert!((back.alt_km - alt).abs() < 1e-6);
        }

        #[test]
        fn prop_haversine_symmetric_and_bounded(
            lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
            lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
        ) {
            let a = Geodetic::from_degrees(lat1, lon1, 0.0);
            let b = Geodetic::from_degrees(lat2, lon2, 0.0);
            let d_ab = a.haversine_km(&b);
            let d_ba = b.haversine_km(&a);
            prop_assert!((d_ab - d_ba).abs() < 1e-9);
            // Max surface distance is half the circumference.
            prop_assert!(d_ab <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-9);
            prop_assert!(d_ab >= 0.0);
        }

        #[test]
        fn prop_ecef_rotation_preserves_norm(x in -8000.0f64..8000.0, y in -8000.0f64..8000.0,
                                             z in -8000.0f64..8000.0, secs in 0u64..86400) {
            let p = Eci::new(x, y, z);
            let e = p.to_ecef(SimTime::from_secs(secs));
            prop_assert!((p.norm() - e.norm()).abs() < 1e-6);
        }
    }
}
