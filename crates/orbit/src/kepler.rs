//! Keplerian two-body orbit model with J2 nodal regression.
//!
//! StarCDN's constellation (Starlink shell 1) is near-circular
//! (e < 0.002), so we model each satellite as a circular orbit described
//! by altitude, inclination, right ascension of the ascending node (RAAN)
//! and an initial phase along the orbit. The dominant perturbation that
//! matters over a 5-day simulation is the J2-driven westward drift of the
//! RAAN (~ -5°/day for the 53°/550 km shell), which we include so long
//! traces see realistic precession.

use crate::constants::{EARTH_EQ_RADIUS_KM, EARTH_RADIUS_KM, J2, MU_EARTH};
use crate::coords::Eci;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Classical orbital elements for the general (elliptical) case.
///
/// Only the subset needed to position a satellite is retained; the TLE
/// parser produces these and [`CircularOrbit`] is the specialization used
/// by the constellation builder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbitalElements {
    /// Semi-major axis, km.
    pub semi_major_axis_km: f64,
    /// Eccentricity (dimensionless, `0 ≤ e < 1`).
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// Right ascension of the ascending node, radians.
    pub raan_rad: f64,
    /// Argument of perigee, radians.
    pub arg_perigee_rad: f64,
    /// Mean anomaly at epoch, radians.
    pub mean_anomaly_rad: f64,
}

impl OrbitalElements {
    /// Orbital period in seconds.
    pub fn period_s(&self) -> f64 {
        let a = self.semi_major_axis_km;
        2.0 * std::f64::consts::PI * (a * a * a / MU_EARTH).sqrt()
    }

    /// Mean motion in rad/s.
    pub fn mean_motion_rad_s(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.period_s()
    }

    /// Collapse to the circular model (ignores eccentricity and argument
    /// of perigee, folding the mean anomaly into the phase). Valid for
    /// near-circular orbits like Starlink's.
    pub fn to_circular(&self) -> CircularOrbit {
        CircularOrbit {
            altitude_km: self.semi_major_axis_km - EARTH_RADIUS_KM,
            inclination_rad: self.inclination_rad,
            raan_rad: self.raan_rad,
            phase_rad: self.arg_perigee_rad + self.mean_anomaly_rad,
        }
    }
}

/// A circular orbit: the workhorse model for the Starlink shell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircularOrbit {
    /// Altitude above the mean Earth radius, km.
    pub altitude_km: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// RAAN at epoch, radians.
    pub raan_rad: f64,
    /// Argument of latitude (phase along the orbit) at epoch, radians.
    pub phase_rad: f64,
}

impl CircularOrbit {
    /// Construct from degrees; the common entry point for builders.
    pub fn from_degrees(
        altitude_km: f64,
        inclination_deg: f64,
        raan_deg: f64,
        phase_deg: f64,
    ) -> Self {
        CircularOrbit {
            altitude_km,
            inclination_rad: inclination_deg.to_radians(),
            raan_rad: raan_deg.to_radians(),
            phase_rad: phase_deg.to_radians(),
        }
    }

    /// Orbital radius, km.
    pub fn radius_km(&self) -> f64 {
        EARTH_RADIUS_KM + self.altitude_km
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        let a = self.radius_km();
        2.0 * std::f64::consts::PI * (a * a * a / MU_EARTH).sqrt()
    }

    /// Mean motion, rad/s.
    pub fn mean_motion_rad_s(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.period_s()
    }

    /// J2 secular rate of change of the RAAN, rad/s (negative — westward —
    /// for prograde orbits).
    pub fn raan_drift_rad_s(&self) -> f64 {
        let n = self.mean_motion_rad_s();
        let a = self.radius_km();
        -1.5 * n * J2 * (EARTH_EQ_RADIUS_KM / a).powi(2) * self.inclination_rad.cos()
    }

    /// Inertial position at simulation time `t`.
    ///
    /// The satellite moves along the (J2-precessing) orbital plane at
    /// constant angular rate. Standard rotation: position in the orbital
    /// plane by the argument of latitude `u`, inclined by `i`, then
    /// rotated by the RAAN `Ω`.
    pub fn position_eci(&self, t: SimTime) -> Eci {
        let ts = t.as_secs_f64();
        let u = self.phase_rad + self.mean_motion_rad_s() * ts;
        let raan = self.raan_rad + self.raan_drift_rad_s() * ts;
        let r = self.radius_km();
        let (su, cu) = u.sin_cos();
        let (si, ci) = self.inclination_rad.sin_cos();
        let (so, co) = raan.sin_cos();
        Eci { x: r * (co * cu - so * su * ci), y: r * (so * cu + co * su * ci), z: r * (su * si) }
    }

    /// Orbital speed relative to the Earth's centre, km/s.
    pub fn speed_km_s(&self) -> f64 {
        (MU_EARTH / self.radius_km()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::STARLINK_ALTITUDE_KM;
    use proptest::prelude::*;

    fn starlink_orbit() -> CircularOrbit {
        CircularOrbit::from_degrees(STARLINK_ALTITUDE_KM, 53.0, 0.0, 0.0)
    }

    #[test]
    fn speed_is_about_7_6_km_s() {
        // The paper cites ~8 km/s for LEO satellites.
        let v = starlink_orbit().speed_km_s();
        assert!((7.0..8.2).contains(&v), "v = {v}");
    }

    #[test]
    fn period_is_about_95_minutes() {
        let p = starlink_orbit().period_s() / 60.0;
        assert!((90.0..100.0).contains(&p), "period = {p} min");
    }

    #[test]
    fn position_radius_constant() {
        let o = starlink_orbit();
        for secs in [0u64, 60, 600, 3000, 86400] {
            let r = o.position_eci(SimTime::from_secs(secs)).norm();
            assert!((r - o.radius_km()).abs() < 1e-6, "r = {r} at t = {secs}");
        }
    }

    #[test]
    fn latitude_bounded_by_inclination() {
        let o = starlink_orbit();
        for secs in (0..6000).step_by(15) {
            let lat = o
                .position_eci(SimTime::from_secs(secs))
                .to_ecef(SimTime::from_secs(secs))
                .to_geodetic()
                .lat_deg();
            assert!(lat.abs() <= 53.0 + 1e-6, "lat = {lat}");
        }
    }

    #[test]
    fn reaches_max_latitude() {
        // A quarter period after the ascending node the satellite is at its
        // maximum latitude = inclination.
        let o = starlink_orbit();
        let quarter = SimTime::from_millis((o.period_s() * 250.0) as u64);
        let lat = o.position_eci(quarter).to_ecef(SimTime::ZERO).to_geodetic().lat_deg();
        // ECEF at t=0 alignment keeps inertial latitude; use ECI z directly.
        assert!((lat - 53.0).abs() < 0.5, "max lat = {lat}");
    }

    #[test]
    fn raan_drift_is_westward_and_about_5_deg_per_day() {
        let drift_deg_day = starlink_orbit().raan_drift_rad_s().to_degrees() * 86400.0;
        assert!(drift_deg_day < 0.0);
        assert!((drift_deg_day.abs() - 5.0).abs() < 1.0, "drift = {drift_deg_day} deg/day");
    }

    #[test]
    fn elements_to_circular_preserves_geometry() {
        let el = OrbitalElements {
            semi_major_axis_km: EARTH_RADIUS_KM + 550.0,
            eccentricity: 0.0001,
            inclination_rad: 53f64.to_radians(),
            raan_rad: 1.0,
            arg_perigee_rad: 0.25,
            mean_anomaly_rad: 0.5,
        };
        let c = el.to_circular();
        assert!((c.altitude_km - 550.0).abs() < 1e-9);
        assert!((c.phase_rad - 0.75).abs() < 1e-12);
        assert!((el.period_s() - c.period_s()).abs() < 1e-6);
    }

    #[test]
    fn polar_orbit_has_zero_raan_drift() {
        let polar = CircularOrbit::from_degrees(550.0, 90.0, 0.0, 0.0);
        assert!(polar.raan_drift_rad_s().abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_position_on_sphere(alt in 300.0f64..2000.0, inc in 0.0f64..180.0,
                                   raan in 0.0f64..360.0, phase in 0.0f64..360.0,
                                   secs in 0u64..864000) {
            let o = CircularOrbit::from_degrees(alt, inc, raan, phase);
            let r = o.position_eci(SimTime::from_secs(secs)).norm();
            prop_assert!((r - o.radius_km()).abs() < 1e-6);
        }

        #[test]
        fn prop_periodicity(phase in 0.0f64..360.0, secs in 0u64..10000) {
            // Ignoring J2 (zero inclination effect at i=90 has zero drift),
            // position repeats after one period.
            let o = CircularOrbit::from_degrees(550.0, 90.0, 10.0, phase);
            let t0 = SimTime::from_secs(secs);
            let t1 = SimTime::from_millis(t0.as_millis() + (o.period_s() * 1000.0).round() as u64);
            let p0 = o.position_eci(t0);
            let p1 = o.position_eci(t1);
            let d = ((p0.x - p1.x).powi(2) + (p0.y - p1.y).powi(2) + (p0.z - p1.z).powi(2)).sqrt();
            prop_assert!(d < 1.0, "drift over one period: {} km", d);
        }
    }
}
