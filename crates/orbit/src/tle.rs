//! Two-Line Element (TLE) parsing.
//!
//! The paper seeds its simulator with CelesTrak TLEs for the Starlink
//! 53° shell. We implement a TLE parser so real element sets can be
//! loaded; propagation then uses the circular Keplerian model (see
//! DESIGN.md — a full SGP4 is unnecessary for near-circular LEO shells at
//! the fidelity the CDN simulation consumes).
//!
//! Format reference: each satellite is described by a name line followed
//! by two 69-column data lines ("line 1" and "line 2").

use crate::constants::MU_EARTH;
use crate::kepler::OrbitalElements;

/// A parsed TLE record.
#[derive(Debug, Clone, PartialEq)]
pub struct Tle {
    pub name: String,
    pub norad_id: u32,
    pub epoch_year: u16,
    /// Day of year including fraction.
    pub epoch_day: f64,
    pub inclination_deg: f64,
    pub raan_deg: f64,
    pub eccentricity: f64,
    pub arg_perigee_deg: f64,
    pub mean_anomaly_deg: f64,
    /// Mean motion in revolutions per day.
    pub mean_motion_rev_day: f64,
}

/// Errors produced while parsing TLE text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TleError {
    /// The record does not have the expected number of lines.
    TooFewLines,
    /// A data line is shorter than the 69-column TLE format.
    LineTooShort { line: u8 },
    /// A data line does not start with the expected line number.
    BadLineNumber { line: u8 },
    /// A numeric field failed to parse.
    BadField { line: u8, field: &'static str },
    /// The line checksum does not match.
    BadChecksum { line: u8, expected: u8, actual: u8 },
}

impl std::fmt::Display for TleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TleError::TooFewLines => write!(f, "TLE record has too few lines"),
            TleError::LineTooShort { line } => write!(f, "TLE line {line} is too short"),
            TleError::BadLineNumber { line } => write!(f, "TLE line {line} has wrong line number"),
            TleError::BadField { line, field } => {
                write!(f, "TLE line {line}: cannot parse field `{field}`")
            }
            TleError::BadChecksum { line, expected, actual } => {
                write!(f, "TLE line {line}: checksum {actual} != expected {expected}")
            }
        }
    }
}

impl std::error::Error for TleError {}

/// TLE modulo-10 checksum: digits count as their value, `-` counts as 1.
pub fn checksum(line: &str) -> u8 {
    let mut sum = 0u32;
    for c in line.chars().take(68) {
        match c {
            '0'..='9' => sum += c as u32 - '0' as u32,
            '-' => sum += 1,
            _ => {}
        }
    }
    (sum % 10) as u8
}

fn field<T: std::str::FromStr>(
    line: &str,
    range: std::ops::Range<usize>,
    line_no: u8,
    name: &'static str,
) -> Result<T, TleError> {
    line.get(range)
        .map(str::trim)
        .and_then(|s| s.parse().ok())
        .ok_or(TleError::BadField { line: line_no, field: name })
}

impl Tle {
    /// Parse one TLE record from a name line plus two data lines.
    pub fn parse(name: &str, line1: &str, line2: &str) -> Result<Tle, TleError> {
        for (n, l) in [(1u8, line1), (2u8, line2)] {
            if l.len() < 69 {
                return Err(TleError::LineTooShort { line: n });
            }
            if !l.starts_with(&format!("{n} ")) {
                return Err(TleError::BadLineNumber { line: n });
            }
            let expected: u8 =
                l[68..69].parse().map_err(|_| TleError::BadField { line: n, field: "checksum" })?;
            let actual = checksum(l);
            if actual != expected {
                return Err(TleError::BadChecksum { line: n, expected, actual });
            }
        }

        let norad_id: u32 = field(line1, 2..7, 1, "norad_id")?;
        let epoch_year2: u16 = field(line1, 18..20, 1, "epoch_year")?;
        let epoch_year = if epoch_year2 < 57 { 2000 + epoch_year2 } else { 1900 + epoch_year2 };
        let epoch_day: f64 = field(line1, 20..32, 1, "epoch_day")?;

        let inclination_deg: f64 = field(line2, 8..16, 2, "inclination")?;
        let raan_deg: f64 = field(line2, 17..25, 2, "raan")?;
        let ecc_digits: String = line2
            .get(26..33)
            .map(str::trim)
            .map(str::to_owned)
            .ok_or(TleError::BadField { line: 2, field: "eccentricity" })?;
        let eccentricity: f64 = format!("0.{ecc_digits}")
            .parse()
            .map_err(|_| TleError::BadField { line: 2, field: "eccentricity" })?;
        let arg_perigee_deg: f64 = field(line2, 34..42, 2, "arg_perigee")?;
        let mean_anomaly_deg: f64 = field(line2, 43..51, 2, "mean_anomaly")?;
        let mean_motion_rev_day: f64 = field(line2, 52..63, 2, "mean_motion")?;

        Ok(Tle {
            name: name.trim().to_owned(),
            norad_id,
            epoch_year,
            epoch_day,
            inclination_deg,
            raan_deg,
            eccentricity,
            arg_perigee_deg,
            mean_anomaly_deg,
            mean_motion_rev_day,
        })
    }

    /// Parse a whole 3-line-per-record catalog (CelesTrak format).
    pub fn parse_catalog(text: &str) -> Result<Vec<Tle>, TleError> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            if i + 2 > lines.len() && !lines[i].starts_with("1 ") {
                return Err(TleError::TooFewLines);
            }
            // Records may or may not carry a name line.
            if lines[i].starts_with("1 ") {
                if i + 1 >= lines.len() {
                    return Err(TleError::TooFewLines);
                }
                out.push(Tle::parse("", lines[i], lines[i + 1])?);
                i += 2;
            } else {
                if i + 2 >= lines.len() {
                    return Err(TleError::TooFewLines);
                }
                out.push(Tle::parse(lines[i], lines[i + 1], lines[i + 2])?);
                i += 3;
            }
        }
        Ok(out)
    }

    /// Semi-major axis implied by the mean motion, km.
    pub fn semi_major_axis_km(&self) -> f64 {
        let n_rad_s = self.mean_motion_rev_day * 2.0 * std::f64::consts::PI / 86400.0;
        (MU_EARTH / (n_rad_s * n_rad_s)).cbrt()
    }

    /// Convert to classical orbital elements.
    pub fn to_elements(&self) -> OrbitalElements {
        OrbitalElements {
            semi_major_axis_km: self.semi_major_axis_km(),
            eccentricity: self.eccentricity,
            inclination_rad: self.inclination_deg.to_radians(),
            raan_rad: self.raan_deg.to_radians(),
            arg_perigee_rad: self.arg_perigee_deg.to_radians(),
            mean_anomaly_rad: self.mean_anomaly_deg.to_radians(),
        }
    }
}

/// Render a TLE for a circular orbit (testing aid: lets the test suite
/// synthesize valid catalogs without network access).
pub fn synthesize_tle(
    name: &str,
    norad_id: u32,
    inclination_deg: f64,
    raan_deg: f64,
    mean_anomaly_deg: f64,
    mean_motion_rev_day: f64,
) -> (String, String, String) {
    let l1_body =
        format!("1 {norad_id:05}U 24001A   24001.00000000  .00000000  00000+0  00000+0 0  999");
    let l1 = format!("{l1_body}{}", checksum(&l1_body));
    let l2_body = format!(
        "2 {norad_id:05} {inclination_deg:8.4} {raan_deg:8.4} 0001000 {:8.4} {mean_anomaly_deg:8.4} {mean_motion_rev_day:11.8}    1",
        0.0
    );
    let l2 = format!("{l2_body}{}", checksum(&l2_body));
    (name.to_owned(), l1, l2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::EARTH_RADIUS_KM;

    // A real Starlink TLE (STARLINK-1008, historical epoch).
    const NAME: &str = "STARLINK-1008";
    const L1: &str = "1 44714U 19074B   23001.00000000  .00002182  00000+0  16538-3 0  9995";
    const L2: &str = "2 44714  53.0541 338.0061 0001360  85.1559 274.9583 15.06391998171799";

    #[test]
    fn parses_real_starlink_tle() {
        // Recompute checksums since the epoch fields above were normalized.
        let l1 = format!("{}{}", &L1[..68], checksum(L1));
        let l2 = format!("{}{}", &L2[..68], checksum(L2));
        let tle = Tle::parse(NAME, &l1, &l2).expect("parse");
        assert_eq!(tle.name, "STARLINK-1008");
        assert_eq!(tle.norad_id, 44714);
        assert_eq!(tle.epoch_year, 2023);
        assert!((tle.inclination_deg - 53.0541).abs() < 1e-9);
        assert!((tle.raan_deg - 338.0061).abs() < 1e-9);
        assert!((tle.eccentricity - 0.0001360).abs() < 1e-12);
        assert!((tle.mean_motion_rev_day - 15.06391998).abs() < 1e-6);
    }

    #[test]
    fn starlink_altitude_from_mean_motion() {
        let l1 = format!("{}{}", &L1[..68], checksum(L1));
        let l2 = format!("{}{}", &L2[..68], checksum(L2));
        let tle = Tle::parse(NAME, &l1, &l2).unwrap();
        let alt = tle.semi_major_axis_km() - EARTH_RADIUS_KM;
        assert!((alt - 550.0).abs() < 30.0, "altitude {alt}");
    }

    #[test]
    fn to_elements_roundtrip_inclination() {
        let l1 = format!("{}{}", &L1[..68], checksum(L1));
        let l2 = format!("{}{}", &L2[..68], checksum(L2));
        let el = Tle::parse(NAME, &l1, &l2).unwrap().to_elements();
        assert!((el.inclination_rad.to_degrees() - 53.0541).abs() < 1e-9);
        let c = el.to_circular();
        assert!((c.period_s() / 60.0 - 95.6).abs() < 1.0, "period {}", c.period_s() / 60.0);
    }

    #[test]
    fn checksum_counts_minus_as_one() {
        assert_eq!(checksum("1 ------"), 7);
        assert_eq!(checksum("1 11111"), 6);
    }

    #[test]
    fn rejects_bad_checksum() {
        let l1 = format!("{}{}", &L1[..68], (checksum(L1) + 1) % 10);
        let l2 = format!("{}{}", &L2[..68], checksum(L2));
        match Tle::parse(NAME, &l1, &l2) {
            Err(TleError::BadChecksum { line: 1, .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_short_line() {
        assert_eq!(Tle::parse("X", "1 short", "2 short"), Err(TleError::LineTooShort { line: 1 }));
    }

    #[test]
    fn rejects_swapped_lines() {
        let l1 = format!("{}{}", &L1[..68], checksum(L1));
        let l2 = format!("{}{}", &L2[..68], checksum(L2));
        assert_eq!(Tle::parse(NAME, &l2, &l1), Err(TleError::BadLineNumber { line: 1 }));
    }

    #[test]
    fn synthesized_tle_roundtrips() {
        let (name, l1, l2) = synthesize_tle("TEST-SAT", 12345, 53.0, 120.0, 45.0, 15.05);
        let tle = Tle::parse(&name, &l1, &l2).expect("synthesized TLE must parse");
        assert_eq!(tle.norad_id, 12345);
        assert!((tle.inclination_deg - 53.0).abs() < 1e-3);
        assert!((tle.raan_deg - 120.0).abs() < 1e-3);
        assert!((tle.mean_anomaly_deg - 45.0).abs() < 1e-3);
        assert!((tle.mean_motion_rev_day - 15.05).abs() < 1e-6);
    }

    #[test]
    fn parse_catalog_with_and_without_names() {
        let (n, l1, l2) = synthesize_tle("CAT-A", 1, 53.0, 0.0, 0.0, 15.05);
        let (_, m1, m2) = synthesize_tle("", 2, 53.0, 5.0, 20.0, 15.05);
        let text = format!("{n}\n{l1}\n{l2}\n{m1}\n{m2}\n");
        let cat = Tle::parse_catalog(&text).expect("catalog");
        assert_eq!(cat.len(), 2);
        assert_eq!(cat[0].name, "CAT-A");
        assert_eq!(cat[1].norad_id, 2);
    }

    #[test]
    fn parse_catalog_truncated_record_errors() {
        let (n, l1, _) = synthesize_tle("CAT-A", 1, 53.0, 0.0, 0.0, 15.05);
        let text = format!("{n}\n{l1}\n");
        assert!(Tle::parse_catalog(&text).is_err());
    }

    #[test]
    fn error_display_messages() {
        let e = TleError::BadChecksum { line: 2, expected: 3, actual: 7 };
        assert!(e.to_string().contains("checksum"));
        assert!(TleError::TooFewLines.to_string().contains("few"));
    }
}
