//! Satellite state propagation.
//!
//! A [`Satellite`] pairs an identifier with its orbit; a [`Propagator`]
//! turns orbits into time-stamped positions. The default propagator
//! evaluates the analytic circular model directly; a caching layer
//! ([`SnapshotPropagator`]) amortizes per-epoch evaluation when many
//! queries share the same simulation step (the common case: the scheduler
//! queries all 1296 satellites every 15 s epoch).

use crate::coords::{Ecef, Eci, Geodetic};
use crate::kepler::CircularOrbit;
use crate::time::SimTime;
use crate::walker::SatelliteId;
use serde::{Deserialize, Serialize};

/// A satellite: identity plus orbit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Satellite {
    pub id: SatelliteId,
    pub orbit: CircularOrbit,
}

/// Fully resolved satellite state at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteState {
    pub id: SatelliteId,
    pub time: SimTime,
    pub eci: Eci,
    pub ecef: Ecef,
    pub geodetic: Geodetic,
}

/// Anything that can position satellites in time.
pub trait Propagator {
    /// Earth-fixed position of one satellite at time `t`.
    fn position_ecef(&self, sat: &Satellite, t: SimTime) -> Ecef;

    /// Full state for one satellite at time `t`.
    fn state(&self, sat: &Satellite, t: SimTime) -> SatelliteState {
        let eci = sat.orbit.position_eci(t);
        let ecef = eci.to_ecef(t);
        SatelliteState { id: sat.id, time: t, eci, ecef, geodetic: ecef.to_geodetic() }
    }
}

/// Direct analytic evaluation: stateless and exact for the circular model.
#[derive(Debug, Default, Clone, Copy)]
pub struct AnalyticPropagator;

impl Propagator for AnalyticPropagator {
    fn position_ecef(&self, sat: &Satellite, t: SimTime) -> Ecef {
        sat.orbit.position_eci(t).to_ecef(t)
    }
}

/// Per-satellite constants hoisted out of the epoch-advance hot loop,
/// stored struct-of-arrays: everything in `position_eci` + `to_ecef` that
/// does not depend on `t`, one contiguous column per term.
///
/// The time-dependent angles are the argument of latitude
/// `u = phase + n·t` and the Earth-fixed node angle
/// `Ω − θ = raan₀ + (Ω̇_J2 − ω⊕)·t` (the J2-precessing RAAN composed with
/// the frame rotation — both are rotations about z, so they fold into
/// one). With sincos of `phase` and `raan₀` precomputed, each epoch step
/// needs only the sincos of the two *rate* angles — shared by every
/// satellite with the same orbital rates, i.e. computed once per epoch
/// for a whole Walker shell — plus a handful of multiplies per satellite.
/// The columnar layout keeps those multiplies in straight-line loops over
/// contiguous `f64` lanes, which the compiler autovectorizes.
#[derive(Debug, Default)]
struct ConstantsSoa {
    radius_km: Vec<f64>,
    sin_phase: Vec<f64>,
    cos_phase: Vec<f64>,
    sin_raan: Vec<f64>,
    cos_raan: Vec<f64>,
    sin_inc: Vec<f64>,
    cos_inc: Vec<f64>,
    /// Index into the propagator's distinct `(n, Ω̇−ω⊕)` rate table.
    rate_group: Vec<u32>,
}

impl ConstantsSoa {
    fn len(&self) -> usize {
        self.radius_km.len()
    }
}

/// Struct-of-arrays snapshot positions: one contiguous column per ECEF
/// axis plus the squared norm `|p|²` of every position and its fleet-wide
/// maximum (the largest orbital radius², which parameterizes the
/// conservative visibility culling bound).
///
/// The batched visibility scans in
/// [`visibility`](crate::visibility) consume this layout directly so the
/// per-satellite dot products run over plain `f64` slices.
#[derive(Debug, Default, Clone)]
pub struct PositionsSoa {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    p2: Vec<f64>,
    r2_max: f64,
}

impl PositionsSoa {
    /// Number of satellites in the snapshot.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the snapshot holds no satellites.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// ECEF x column, km.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// ECEF y column, km.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// ECEF z column, km.
    pub fn z(&self) -> &[f64] {
        &self.z
    }

    /// Squared position norms `x² + y² + z²`, km².
    pub fn p2(&self) -> &[f64] {
        &self.p2
    }

    /// Fleet-wide maximum of [`PositionsSoa::p2`] (largest orbital
    /// radius²) — the value the visibility culling threshold is built
    /// from.
    pub fn r2_max(&self) -> f64 {
        self.r2_max
    }

    /// Position of satellite `i` recomposed as an [`Ecef`] point.
    pub fn ecef(&self, i: usize) -> Ecef {
        Ecef { x: self.x[i], y: self.y[i], z: self.z[i] }
    }

    fn resize(&mut self, n: usize) {
        self.x.resize(n, 0.0);
        self.y.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p2.resize(n, 0.0);
    }
}

/// An epoch-snapshot propagator: positions for a whole constellation are
/// computed once per epoch and then served from the snapshot.
///
/// The simulation engine advances in 15 s steps and, within a step, asks
/// for the same positions many times (per user, per request batch); this
/// cache makes those queries O(1) array lookups. The per-epoch
/// recomputation itself is hoisted (see [`ConstantsSoa`]): for a
/// single-shell constellation an `advance_to` costs two `sin_cos` calls
/// total plus ~a dozen multiplies per satellite, streamed through
/// struct-of-arrays columns. After the first `advance_to` all buffers are
/// warm and subsequent advances perform **zero heap allocations**.
#[derive(Debug)]
pub struct SnapshotPropagator {
    satellites: Vec<Satellite>,
    epoch: SimTime,
    positions: Vec<Ecef>,
    soa: PositionsSoa,
    sats_per_plane: u16,
    constants: ConstantsSoa,
    /// Distinct `(mean motion, node rate)` pairs across the fleet — one
    /// entry for a uniform Walker shell, a handful for a TLE catalog.
    rates: Vec<(f64, f64)>,
    /// Reusable per-epoch sincos table, one entry per rate pair
    /// (allocation-free after the first advance).
    trigs: Vec<(f64, f64, f64, f64)>,
}

impl SnapshotPropagator {
    /// Build a snapshot propagator over a fixed satellite set.
    ///
    /// `sats_per_plane` is used to index positions by [`SatelliteId`].
    pub fn new(satellites: Vec<Satellite>, sats_per_plane: u16) -> Self {
        let mut rates: Vec<(f64, f64)> = Vec::new();
        let mut constants = ConstantsSoa::default();
        for s in &satellites {
            let o = &s.orbit;
            let n = o.mean_motion_rad_s();
            let node_rate = o.raan_drift_rad_s() - crate::constants::EARTH_ROTATION_RAD_S;
            let key = (n, node_rate);
            let rate_group = match rates.iter().position(|&r| r == key) {
                Some(i) => i,
                None => {
                    rates.push(key);
                    rates.len() - 1
                }
            } as u32;
            let (sin_phase, cos_phase) = o.phase_rad.sin_cos();
            let (sin_raan, cos_raan) = o.raan_rad.sin_cos();
            let (sin_inc, cos_inc) = o.inclination_rad.sin_cos();
            constants.radius_km.push(o.radius_km());
            constants.sin_phase.push(sin_phase);
            constants.cos_phase.push(cos_phase);
            constants.sin_raan.push(sin_raan);
            constants.cos_raan.push(cos_raan);
            constants.sin_inc.push(sin_inc);
            constants.cos_inc.push(cos_inc);
            constants.rate_group.push(rate_group);
        }
        let mut p = SnapshotPropagator {
            positions: Vec::with_capacity(satellites.len()),
            soa: PositionsSoa::default(),
            satellites,
            epoch: SimTime::ZERO,
            sats_per_plane,
            constants,
            rates,
            trigs: Vec::new(),
        };
        p.advance_to(SimTime::ZERO);
        p
    }

    /// Recompute the snapshot for a new epoch.
    ///
    /// The columnar loops below evaluate exactly the angle-addition
    /// arithmetic the scalar path always used, in the same order, so the
    /// produced positions are bit-for-bit stable across refactors; they
    /// just stream it through contiguous columns (with the whole-shell
    /// single-rate-group case free of the per-satellite trig gather).
    pub fn advance_to(&mut self, t: SimTime) {
        self.epoch = t;
        let ts = t.as_secs_f64();
        // sincos of the two rate angles, once per distinct rate pair.
        self.trigs.clear();
        self.trigs.extend(self.rates.iter().map(|&(n, node_rate)| {
            let (snt, cnt) = (n * ts).sin_cos();
            let (sot, cot) = (node_rate * ts).sin_cos();
            (snt, cnt, sot, cot)
        }));
        let n = self.constants.len();
        self.soa.resize(n);
        let c = &self.constants;
        let soa = &mut self.soa;
        if let [(snt, cnt, sot, cot)] = self.trigs[..] {
            // Uniform shell: one rate pair for the whole fleet, so the
            // sincos values are loop-invariant scalars and the body is a
            // pure column sweep.
            for i in 0..n {
                // Angle addition: u = phase + n·t, node = raan₀ + (Ω̇−ω⊕)·t.
                let su = c.sin_phase[i] * cnt + c.cos_phase[i] * snt;
                let cu = c.cos_phase[i] * cnt - c.sin_phase[i] * snt;
                let sn = c.sin_raan[i] * cot + c.cos_raan[i] * sot;
                let cn = c.cos_raan[i] * cot - c.sin_raan[i] * sot;
                // In-plane vector rotated by the combined node angle about z.
                let xo = c.radius_km[i] * cu;
                let yo = c.radius_km[i] * su * c.cos_inc[i];
                soa.x[i] = cn * xo - sn * yo;
                soa.y[i] = sn * xo + cn * yo;
                soa.z[i] = c.radius_km[i] * su * c.sin_inc[i];
            }
        } else {
            for i in 0..n {
                let (snt, cnt, sot, cot) = self.trigs[c.rate_group[i] as usize];
                let su = c.sin_phase[i] * cnt + c.cos_phase[i] * snt;
                let cu = c.cos_phase[i] * cnt - c.sin_phase[i] * snt;
                let sn = c.sin_raan[i] * cot + c.cos_raan[i] * sot;
                let cn = c.cos_raan[i] * cot - c.sin_raan[i] * sot;
                let xo = c.radius_km[i] * cu;
                let yo = c.radius_km[i] * su * c.cos_inc[i];
                soa.x[i] = cn * xo - sn * yo;
                soa.y[i] = sn * xo + cn * yo;
                soa.z[i] = c.radius_km[i] * su * c.sin_inc[i];
            }
        }
        // Squared norms and their maximum feed the visibility culling
        // bound; computing them here (once per epoch) replaces the
        // per-ground-location rescan of the scalar path with a lookup.
        for i in 0..n {
            soa.p2[i] = soa.x[i] * soa.x[i] + soa.y[i] * soa.y[i] + soa.z[i] * soa.z[i];
        }
        let mut r2_max = 0.0f64;
        for &p2 in &soa.p2 {
            r2_max = r2_max.max(p2);
        }
        soa.r2_max = r2_max;
        // Keep the array-of-structs view for scalar callers.
        self.positions.clear();
        self.positions.extend((0..n).map(|i| Ecef { x: soa.x[i], y: soa.y[i], z: soa.z[i] }));
    }

    /// The snapshot's epoch.
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// The satellite set this snapshot covers.
    pub fn satellites(&self) -> &[Satellite] {
        &self.satellites
    }

    /// Position of a satellite (by id) in the current snapshot.
    pub fn position_of(&self, id: SatelliteId) -> Ecef {
        self.positions[id.index(self.sats_per_plane)]
    }

    /// All positions in the current snapshot, indexed like `satellites()`.
    pub fn positions(&self) -> &[Ecef] {
        &self.positions
    }

    /// The struct-of-arrays view of the current snapshot, indexed like
    /// `satellites()` — the batched visibility fast path consumes this.
    pub fn positions_soa(&self) -> &PositionsSoa {
        &self.soa
    }
}

impl Propagator for SnapshotPropagator {
    fn position_ecef(&self, sat: &Satellite, t: SimTime) -> Ecef {
        if t == self.epoch {
            self.position_of(sat.id)
        } else {
            AnalyticPropagator.position_ecef(sat, t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::WalkerConstellation;

    #[test]
    fn analytic_state_is_consistent() {
        let shell = WalkerConstellation::test_shell();
        let sat = shell.satellites()[0];
        let t = SimTime::from_secs(1234);
        let st = AnalyticPropagator.state(&sat, t);
        assert_eq!(st.id, sat.id);
        assert_eq!(st.time, t);
        assert!((st.eci.norm() - sat.orbit.radius_km()).abs() < 1e-6);
        assert!((st.geodetic.alt_km - sat.orbit.altitude_km).abs() < 1e-6);
    }

    #[test]
    fn snapshot_matches_analytic_at_epoch() {
        let shell = WalkerConstellation::test_shell();
        let sats = shell.satellites();
        let mut snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let t = SimTime::from_secs(300);
        snap.advance_to(t);
        for sat in &sats {
            let a = AnalyticPropagator.position_ecef(sat, t);
            let b = snap.position_ecef(sat, t);
            assert!(a.distance_km(&b) < 1e-9);
            let c = snap.position_of(sat.id);
            assert!(a.distance_km(&c) < 1e-9);
        }
    }

    #[test]
    fn snapshot_falls_back_off_epoch() {
        let shell = WalkerConstellation::test_shell();
        let sats = shell.satellites();
        let snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let t = SimTime::from_secs(999);
        let a = AnalyticPropagator.position_ecef(&sats[3], t);
        let b = snap.position_ecef(&sats[3], t);
        assert!(a.distance_km(&b) < 1e-9);
    }

    #[test]
    fn snapshot_hoisting_matches_analytic_for_mixed_altitude_fleet() {
        use crate::kepler::CircularOrbit;
        use crate::walker::SatelliteId;
        // A TLE-catalog-like fleet: every satellite on its own slightly
        // different orbit, so each lands in its own rate group.
        let sats: Vec<Satellite> = (0..24)
            .map(|i| Satellite {
                id: SatelliteId::from_index(i, 6),
                orbit: CircularOrbit::from_degrees(
                    540.0 + i as f64 * 3.5,
                    52.0 + (i % 5) as f64 * 0.4,
                    i as f64 * 15.0,
                    i as f64 * 31.0,
                ),
            })
            .collect();
        let mut snap = SnapshotPropagator::new(sats.clone(), 6);
        for secs in [0u64, 15, 300, 86400, 432_000] {
            let t = SimTime::from_secs(secs);
            snap.advance_to(t);
            for sat in &sats {
                let exact = AnalyticPropagator.position_ecef(sat, t);
                let fast = snap.position_of(sat.id);
                assert!(
                    exact.distance_km(&fast) < 1e-6,
                    "sat {} at t={secs}: {} km apart",
                    sat.id,
                    exact.distance_km(&fast)
                );
            }
        }
    }

    #[test]
    fn snapshot_positions_move_between_epochs() {
        let shell = WalkerConstellation::test_shell();
        let mut snap = SnapshotPropagator::new(shell.satellites(), shell.sats_per_plane);
        let p0 = snap.position_of(SatelliteId::new(0, 0));
        snap.advance_to(SimTime::from_secs(15));
        let p1 = snap.position_of(SatelliteId::new(0, 0));
        // ~7.6 km/s for 15 s ≈ 114 km of motion.
        let d = p0.distance_km(&p1);
        assert!((80.0..160.0).contains(&d), "moved {d} km in 15 s");
    }

    #[test]
    fn soa_view_matches_aos_view_bit_for_bit() {
        let shell = WalkerConstellation::starlink_shell1();
        let mut snap = SnapshotPropagator::new(shell.satellites(), shell.sats_per_plane);
        for secs in [0u64, 15, 450, 86400] {
            snap.advance_to(SimTime::from_secs(secs));
            let soa = snap.positions_soa();
            let aos = snap.positions();
            assert_eq!(soa.len(), aos.len());
            let mut r2_max = 0.0f64;
            for (i, p) in aos.iter().enumerate() {
                assert_eq!(soa.x()[i].to_bits(), p.x.to_bits());
                assert_eq!(soa.y()[i].to_bits(), p.y.to_bits());
                assert_eq!(soa.z()[i].to_bits(), p.z.to_bits());
                let p2 = p.x * p.x + p.y * p.y + p.z * p.z;
                assert_eq!(soa.p2()[i].to_bits(), p2.to_bits());
                r2_max = r2_max.max(p2);
            }
            assert_eq!(soa.r2_max().to_bits(), r2_max.to_bits());
            assert_eq!(soa.ecef(7), aos[7]);
        }
    }
}
