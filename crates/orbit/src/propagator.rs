//! Satellite state propagation.
//!
//! A [`Satellite`] pairs an identifier with its orbit; a [`Propagator`]
//! turns orbits into time-stamped positions. The default propagator
//! evaluates the analytic circular model directly; a caching layer
//! ([`SnapshotPropagator`]) amortizes per-epoch evaluation when many
//! queries share the same simulation step (the common case: the scheduler
//! queries all 1296 satellites every 15 s epoch).

use crate::coords::{Ecef, Eci, Geodetic};
use crate::kepler::CircularOrbit;
use crate::time::SimTime;
use crate::walker::SatelliteId;
use serde::{Deserialize, Serialize};

/// A satellite: identity plus orbit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Satellite {
    pub id: SatelliteId,
    pub orbit: CircularOrbit,
}

/// Fully resolved satellite state at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteState {
    pub id: SatelliteId,
    pub time: SimTime,
    pub eci: Eci,
    pub ecef: Ecef,
    pub geodetic: Geodetic,
}

/// Anything that can position satellites in time.
pub trait Propagator {
    /// Earth-fixed position of one satellite at time `t`.
    fn position_ecef(&self, sat: &Satellite, t: SimTime) -> Ecef;

    /// Full state for one satellite at time `t`.
    fn state(&self, sat: &Satellite, t: SimTime) -> SatelliteState {
        let eci = sat.orbit.position_eci(t);
        let ecef = eci.to_ecef(t);
        SatelliteState { id: sat.id, time: t, eci, ecef, geodetic: ecef.to_geodetic() }
    }
}

/// Direct analytic evaluation: stateless and exact for the circular model.
#[derive(Debug, Default, Clone, Copy)]
pub struct AnalyticPropagator;

impl Propagator for AnalyticPropagator {
    fn position_ecef(&self, sat: &Satellite, t: SimTime) -> Ecef {
        sat.orbit.position_eci(t).to_ecef(t)
    }
}

/// An epoch-snapshot propagator: positions for a whole constellation are
/// computed once per epoch and then served from the snapshot.
///
/// The simulation engine advances in 15 s steps and, within a step, asks
/// for the same positions many times (per user, per request batch); this
/// cache makes those queries O(1) array lookups.
#[derive(Debug)]
pub struct SnapshotPropagator {
    satellites: Vec<Satellite>,
    epoch: SimTime,
    positions: Vec<Ecef>,
    sats_per_plane: u16,
}

impl SnapshotPropagator {
    /// Build a snapshot propagator over a fixed satellite set.
    ///
    /// `sats_per_plane` is used to index positions by [`SatelliteId`].
    pub fn new(satellites: Vec<Satellite>, sats_per_plane: u16) -> Self {
        let mut p = SnapshotPropagator {
            positions: Vec::with_capacity(satellites.len()),
            satellites,
            epoch: SimTime::ZERO,
            sats_per_plane,
        };
        p.advance_to(SimTime::ZERO);
        p
    }

    /// Recompute the snapshot for a new epoch.
    pub fn advance_to(&mut self, t: SimTime) {
        self.epoch = t;
        self.positions.clear();
        self.positions
            .extend(self.satellites.iter().map(|s| s.orbit.position_eci(t).to_ecef(t)));
    }

    /// The snapshot's epoch.
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// The satellite set this snapshot covers.
    pub fn satellites(&self) -> &[Satellite] {
        &self.satellites
    }

    /// Position of a satellite (by id) in the current snapshot.
    pub fn position_of(&self, id: SatelliteId) -> Ecef {
        self.positions[id.index(self.sats_per_plane)]
    }

    /// All positions in the current snapshot, indexed like `satellites()`.
    pub fn positions(&self) -> &[Ecef] {
        &self.positions
    }
}

impl Propagator for SnapshotPropagator {
    fn position_ecef(&self, sat: &Satellite, t: SimTime) -> Ecef {
        if t == self.epoch {
            self.position_of(sat.id)
        } else {
            AnalyticPropagator.position_ecef(sat, t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::WalkerConstellation;

    #[test]
    fn analytic_state_is_consistent() {
        let shell = WalkerConstellation::test_shell();
        let sat = shell.satellites()[0];
        let t = SimTime::from_secs(1234);
        let st = AnalyticPropagator.state(&sat, t);
        assert_eq!(st.id, sat.id);
        assert_eq!(st.time, t);
        assert!((st.eci.norm() - sat.orbit.radius_km()).abs() < 1e-6);
        assert!((st.geodetic.alt_km - sat.orbit.altitude_km).abs() < 1e-6);
    }

    #[test]
    fn snapshot_matches_analytic_at_epoch() {
        let shell = WalkerConstellation::test_shell();
        let sats = shell.satellites();
        let mut snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let t = SimTime::from_secs(300);
        snap.advance_to(t);
        for sat in &sats {
            let a = AnalyticPropagator.position_ecef(sat, t);
            let b = snap.position_ecef(sat, t);
            assert!(a.distance_km(&b) < 1e-9);
            let c = snap.position_of(sat.id);
            assert!(a.distance_km(&c) < 1e-9);
        }
    }

    #[test]
    fn snapshot_falls_back_off_epoch() {
        let shell = WalkerConstellation::test_shell();
        let sats = shell.satellites();
        let snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let t = SimTime::from_secs(999);
        let a = AnalyticPropagator.position_ecef(&sats[3], t);
        let b = snap.position_ecef(&sats[3], t);
        assert!(a.distance_km(&b) < 1e-9);
    }

    #[test]
    fn snapshot_positions_move_between_epochs() {
        let shell = WalkerConstellation::test_shell();
        let mut snap = SnapshotPropagator::new(shell.satellites(), shell.sats_per_plane);
        let p0 = snap.position_of(SatelliteId::new(0, 0));
        snap.advance_to(SimTime::from_secs(15));
        let p1 = snap.position_of(SatelliteId::new(0, 0));
        // ~7.6 km/s for 15 s ≈ 114 km of motion.
        let d = p0.distance_km(&p1);
        assert!((80.0..160.0).contains(&d), "moved {d} km in 15 s");
    }
}
