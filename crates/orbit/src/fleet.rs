//! Building a gridded fleet from a TLE catalog.
//!
//! The paper feeds CelesTrak TLEs for the Starlink 53° shell into its
//! simulator and infers the ISL grid from shell information. This module
//! does the equivalent: given a TLE catalog, cluster satellites into
//! orbital planes by RAAN, order each plane by phase, and assign
//! [`SatelliteId`] grid coordinates — after which the constellation
//! crate's topology, bucket tiling, and failure handling apply
//! unchanged. Slots beyond the satellites present in a plane are simply
//! absent (out of slot), matching the paper's 1170-of-1296 situation.

use crate::kepler::CircularOrbit;
use crate::propagator::Satellite;
use crate::tle::Tle;
use crate::walker::SatelliteId;

/// A fleet assembled from a TLE catalog.
#[derive(Debug, Clone)]
pub struct TleFleet {
    pub satellites: Vec<Satellite>,
    pub num_planes: u16,
    pub sats_per_plane: u16,
    /// Grid slots with no satellite (out-of-slot, §5.4).
    pub empty_slots: Vec<SatelliteId>,
}

/// Errors assembling a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The catalog is empty.
    EmptyCatalog,
    /// A plane holds more satellites than `sats_per_plane` slots.
    PlaneOverfull { plane: u16, count: usize, slots: u16 },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyCatalog => write!(f, "TLE catalog is empty"),
            FleetError::PlaneOverfull { plane, count, slots } => {
                write!(f, "plane {plane} holds {count} satellites but only {slots} slots")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Cluster a TLE catalog into a `num_planes × sats_per_plane` grid.
///
/// Planes are defined by uniform RAAN bins (`360°/num_planes` wide,
/// centred on the bin); within a plane, satellites are ordered by their
/// argument of latitude and assigned to the nearest phase slot.
pub fn fleet_from_tles(
    tles: &[Tle],
    num_planes: u16,
    sats_per_plane: u16,
) -> Result<TleFleet, FleetError> {
    if tles.is_empty() {
        return Err(FleetError::EmptyCatalog);
    }
    let mut planes: Vec<Vec<CircularOrbit>> = vec![Vec::new(); num_planes as usize];
    let plane_width = 360.0 / num_planes as f64;
    for tle in tles {
        let orbit = tle.to_elements().to_circular();
        let raan_deg = orbit.raan_rad.to_degrees().rem_euclid(360.0);
        let plane = ((raan_deg / plane_width).round() as usize) % num_planes as usize;
        planes[plane].push(orbit);
    }

    let slot_width = 360.0 / sats_per_plane as f64;
    let mut satellites = Vec::new();
    let mut occupied = vec![false; num_planes as usize * sats_per_plane as usize];
    for (p, plane) in planes.iter().enumerate() {
        if plane.len() > sats_per_plane as usize {
            return Err(FleetError::PlaneOverfull {
                plane: p as u16,
                count: plane.len(),
                slots: sats_per_plane,
            });
        }
        for orbit in plane {
            let phase_deg = orbit.phase_rad.to_degrees().rem_euclid(360.0);
            let mut slot = ((phase_deg / slot_width).round() as usize) % sats_per_plane as usize;
            // Collisions (two satellites rounding to one slot) walk to the
            // next free slot in the plane.
            let base = p * sats_per_plane as usize;
            let mut walked = 0;
            while occupied[base + slot] {
                slot = (slot + 1) % sats_per_plane as usize;
                walked += 1;
                debug_assert!(walked <= sats_per_plane, "plane overfull despite check");
            }
            occupied[base + slot] = true;
            satellites
                .push(Satellite { id: SatelliteId::new(p as u16, slot as u16), orbit: *orbit });
        }
    }
    satellites.sort_by_key(|s| s.id);

    let empty_slots = (0..num_planes)
        .flat_map(|p| (0..sats_per_plane).map(move |s| SatelliteId::new(p, s)))
        .filter(|id| !occupied[id.index(sats_per_plane)])
        .collect();

    Ok(TleFleet { satellites, num_planes, sats_per_plane, empty_slots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tle::synthesize_tle;
    use crate::walker::WalkerConstellation;

    /// Synthesize a TLE catalog for (a subset of) the Starlink shell.
    fn catalog(skip_every: usize) -> Vec<Tle> {
        let shell = WalkerConstellation::starlink_shell1();
        let mut out = Vec::new();
        for (i, sat) in shell.satellites().iter().enumerate() {
            if skip_every > 0 && i % skip_every == 0 {
                continue;
            }
            let o = &sat.orbit;
            let mean_motion = 86400.0 / o.period_s();
            let (name, l1, l2) = synthesize_tle(
                &format!("SYN-{i}"),
                (40000 + i) as u32,
                o.inclination_rad.to_degrees(),
                o.raan_rad.to_degrees(),
                o.phase_rad.to_degrees().rem_euclid(360.0),
                mean_motion,
            );
            out.push(Tle::parse(&name, &l1, &l2).expect("synth TLE parses"));
        }
        out
    }

    #[test]
    fn full_catalog_fills_grid_exactly() {
        let fleet = fleet_from_tles(&catalog(0), 72, 18).unwrap();
        assert_eq!(fleet.satellites.len(), 1296);
        assert!(fleet.empty_slots.is_empty());
        // Every grid id appears exactly once.
        let mut ids: Vec<_> = fleet.satellites.iter().map(|s| s.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 1296);
    }

    #[test]
    fn grid_assignment_matches_walker_geometry() {
        // Planes must collect same-RAAN satellites; within a plane, slot
        // order must follow phase order (slot labels may be rotated by a
        // constant — they are arbitrary up to rotation, and the Walker
        // phasing offset puts some planes exactly between slot centres).
        let shell = WalkerConstellation::starlink_shell1();
        let fleet = fleet_from_tles(&catalog(0), 72, 18).unwrap();
        for sat in &fleet.satellites {
            let reference = shell.orbit_for(sat.id);
            let raan_err = (sat.orbit.raan_rad - reference.raan_rad).to_degrees().abs();
            assert!(raan_err < 0.51, "{}: RAAN error {raan_err}°", sat.id);
        }
        // Per-plane phase monotonicity (one wrap allowed).
        for p in 0..72u16 {
            let mut phases: Vec<(u16, f64)> = fleet
                .satellites
                .iter()
                .filter(|s| s.id.orbit == p)
                .map(|s| (s.id.slot, s.orbit.phase_rad.to_degrees().rem_euclid(360.0)))
                .collect();
            phases.sort_by_key(|&(slot, _)| slot);
            let wraps = phases.windows(2).filter(|w| w[1].1 < w[0].1).count();
            assert!(wraps <= 1, "plane {p}: phases not slot-ordered: {phases:?}");
        }
    }

    #[test]
    fn sparse_catalog_reports_empty_slots() {
        // Drop every 10th satellite: ~130 out-of-slot, like the paper's
        // 126-of-1296 observation.
        let fleet = fleet_from_tles(&catalog(10), 72, 18).unwrap();
        assert_eq!(fleet.satellites.len(), 1296 - 130);
        assert_eq!(fleet.empty_slots.len(), 130);
        // Empty slots are real grid coordinates.
        for id in &fleet.empty_slots {
            assert!(id.orbit < 72 && id.slot < 18);
        }
    }

    #[test]
    fn empty_catalog_rejected() {
        match fleet_from_tles(&[], 72, 18) {
            Err(FleetError::EmptyCatalog) => {}
            other => panic!("expected EmptyCatalog, got {other:?}"),
        }
    }

    #[test]
    fn overfull_plane_rejected() {
        // 30 satellites all in one plane of 18 slots.
        let mut tles = Vec::new();
        for i in 0..30 {
            let (n, l1, l2) =
                synthesize_tle(&format!("X-{i}"), i, 53.0, 0.0, i as f64 * 12.0, 15.05);
            tles.push(Tle::parse(&n, &l1, &l2).unwrap());
        }
        match fleet_from_tles(&tles, 72, 18) {
            Err(FleetError::PlaneOverfull { plane: 0, count: 30, slots: 18 }) => {}
            other => panic!("expected PlaneOverfull, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(FleetError::EmptyCatalog.to_string().contains("empty"));
        let e = FleetError::PlaneOverfull { plane: 3, count: 20, slots: 18 };
        assert!(e.to_string().contains("plane 3"));
    }
}
