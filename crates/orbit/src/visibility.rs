//! Ground-to-satellite visibility, elevation angles, and propagation delay.
//!
//! A user terminal can connect to a satellite when the satellite is above
//! a minimum elevation angle (Starlink operates at 25°). At 550 km and a
//! 25° mask, a user typically sees on the order of 10+ satellites of the
//! full shell at mid-latitudes, matching the paper's observation.

use crate::constants::{EARTH_RADIUS_KM, SPEED_OF_LIGHT_KM_S};
use crate::coords::{Ecef, Geodetic};
use crate::propagator::{PositionsSoa, Satellite};
use crate::time::{SimDuration, SimTime};
use crate::walker::SatelliteId;

/// Starlink's minimum elevation mask, degrees.
pub const STARLINK_MIN_ELEVATION_DEG: f64 = 25.0;

/// A visible satellite as seen from a ground location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibleSatellite {
    pub id: SatelliteId,
    /// Elevation above the local horizon, degrees.
    pub elevation_deg: f64,
    /// Straight-line range, km.
    pub slant_range_km: f64,
}

impl VisibleSatellite {
    /// One-way propagation delay over the ground-satellite link.
    pub fn propagation_delay(&self) -> SimDuration {
        propagation_delay_km(self.slant_range_km)
    }
}

/// One-way propagation delay for a straight-line distance.
pub fn propagation_delay_km(distance_km: f64) -> SimDuration {
    SimDuration::from_secs_f64(distance_km / SPEED_OF_LIGHT_KM_S)
}

/// One-way propagation delay in fractional milliseconds (no rounding),
/// used where sub-millisecond resolution matters (latency CDFs).
pub fn propagation_delay_ms_f64(distance_km: f64) -> f64 {
    distance_km / SPEED_OF_LIGHT_KM_S * 1000.0
}

/// Elevation angle (degrees) of a satellite at `sat_ecef` as seen from a
/// ground point `ground_ecef`, and the slant range (km).
///
/// Elevation is the angle between the local horizontal plane and the line
/// of sight: `sin(el) = (r̂_ground · d) / |d|` where `d` is the vector
/// from ground to satellite.
pub fn elevation_and_range(ground_ecef: &Ecef, sat_ecef: &Ecef) -> (f64, f64) {
    let dx = sat_ecef.x - ground_ecef.x;
    let dy = sat_ecef.y - ground_ecef.y;
    let dz = sat_ecef.z - ground_ecef.z;
    let range = (dx * dx + dy * dy + dz * dz).sqrt();
    let gnorm = ground_ecef.norm();
    let dot = (ground_ecef.x * dx + ground_ecef.y * dy + ground_ecef.z * dz) / (gnorm * range);
    (dot.asin().to_degrees(), range)
}

/// All satellites visible from `ground` at time `t` above `min_elevation_deg`,
/// sorted by descending elevation (best first).
pub fn visible_satellites(
    satellites: &[Satellite],
    ground: Geodetic,
    t: SimTime,
    min_elevation_deg: f64,
) -> Vec<VisibleSatellite> {
    let g = ground.to_ecef();
    let max_range = max_slant_range_km(
        satellites.first().map(|s| s.orbit.altitude_km).unwrap_or(550.0),
        min_elevation_deg,
    );
    let mut out: Vec<VisibleSatellite> = satellites
        .iter()
        .filter_map(|sat| {
            let p = sat.orbit.position_eci(t).to_ecef(t);
            // Cheap rejection: beyond the max slant range nothing can be
            // above the elevation mask.
            let dx = p.x - g.x;
            if dx.abs() > max_range {
                return None;
            }
            let (el, range) = elevation_and_range(&g, &p);
            (el >= min_elevation_deg && range <= max_range + 1.0).then_some(VisibleSatellite {
                id: sat.id,
                elevation_deg: el,
                slant_range_km: range,
            })
        })
        .collect();
    out.sort_by(|a, b| b.elevation_deg.total_cmp(&a.elevation_deg));
    out
}

/// Cosine of the maximum Earth-central angle between a ground point (at
/// radius `ground_radius_km` from the Earth's centre) and any satellite
/// at `orbit_radius_km` that sits above `min_elevation_deg`.
///
/// Spherical trigonometry on the centre–ground–satellite triangle: with
/// elevation `el` the angle at the ground point is `90° + el`, so the
/// central angle is `γ = 90° − el − asin((Rg/Rs)·cos el)`, monotonically
/// decreasing in `el`. Any satellite above the mask therefore satisfies
/// `cos γ ≥ cos γ_max` — one dot product against the ground unit vector
/// decides "provably below the mask" without `asin`/`sqrt`. The bound is
/// conservative (it never rejects a satellite above the mask), which is
/// what keeps the culling fast path bit-for-bit identical to the exact
/// scan.
pub fn max_central_angle_cos(
    ground_radius_km: f64,
    orbit_radius_km: f64,
    min_elevation_deg: f64,
) -> f64 {
    let el = min_elevation_deg.to_radians();
    let ratio = (ground_radius_km / orbit_radius_km) * el.cos();
    let gamma = std::f64::consts::FRAC_PI_2 - el - ratio.clamp(-1.0, 1.0).asin();
    // Slack of 1e-6 rad (~6 m of surface arc) swamps every floating-point
    // rounding source in the dot-product test while culling essentially
    // nothing extra.
    (gamma + 1e-6).cos()
}

/// The conservative culling threshold for a satellite set: computed from
/// the *largest* orbital radius present (a higher satellite can be above
/// the mask at a wider central angle), so one threshold is valid for
/// mixed-altitude fleets such as TLE catalogs.
fn cull_threshold(g2: f64, positions: &[Ecef], min_elevation_deg: f64) -> Option<(f64, f64)> {
    let mut r2_max = 0.0f64;
    for p in positions {
        r2_max = r2_max.max(p.x * p.x + p.y * p.y + p.z * p.z);
    }
    if r2_max <= 0.0 || g2 <= 0.0 {
        return None;
    }
    let c = max_central_angle_cos(g2.sqrt(), r2_max.sqrt(), min_elevation_deg);
    // The one-dot-product test below assumes cos γ_max > 0 (γ_max < 90°);
    // exotic masks at or below the horizon fall back to the exact scan.
    (c > 0.0).then_some((c * c, g2))
}

/// Collect satellites above the mask (unsorted, in slice order), culling
/// provably-invisible ones with one dot product before the exact math.
/// `keep` pre-filters by identity (e.g. alive satellites only).
fn collect_visible(
    satellites: &[Satellite],
    positions: &[Ecef],
    g: &Ecef,
    min_elevation_deg: f64,
    mut keep: impl FnMut(SatelliteId) -> bool,
) -> Vec<VisibleSatellite> {
    debug_assert_eq!(satellites.len(), positions.len());
    let g2 = g.x * g.x + g.y * g.y + g.z * g.z;
    let cull = cull_threshold(g2, positions, min_elevation_deg);
    let mut out = Vec::new();
    for (sat, p) in satellites.iter().zip(positions) {
        if !keep(sat.id) {
            continue;
        }
        if let Some((c2, g2)) = cull {
            // cos γ ≥ c  ⇔  d ≥ 0 ∧ d² ≥ c²·|g|²·|p|²  (c > 0), with no
            // square roots or inverse trig on the reject path.
            let d = g.x * p.x + g.y * p.y + g.z * p.z;
            if d <= 0.0 {
                continue;
            }
            let p2 = p.x * p.x + p.y * p.y + p.z * p.z;
            if d * d < c2 * g2 * p2 {
                continue;
            }
        }
        let (el, range) = elevation_and_range(g, p);
        if el >= min_elevation_deg {
            out.push(VisibleSatellite { id: sat.id, elevation_deg: el, slant_range_km: range });
        }
    }
    out
}

/// Same as [`visible_satellites`] but using precomputed ECEF positions
/// aligned with `satellites` (snapshot fast path). Satellites provably
/// below the mask are rejected with one dot product each (see
/// [`max_central_angle_cos`]); the result set is exactly the brute-force
/// scan's.
pub fn visible_from_positions(
    satellites: &[Satellite],
    positions: &[Ecef],
    ground: Geodetic,
    min_elevation_deg: f64,
) -> Vec<VisibleSatellite> {
    let g = ground.to_ecef();
    let mut out = collect_visible(satellites, positions, &g, min_elevation_deg, |_| true);
    out.sort_by(|a, b| b.elevation_deg.total_cmp(&a.elevation_deg));
    out
}

/// The `k` best (highest-elevation) satellites above the mask, best
/// first, restricted to ids passing `keep` — the scheduler's fast path:
/// it spreads users over `top_k` satellites only, so a full descending
/// sort of every visible satellite is wasted work.
///
/// Uses `select_nth_unstable` top-k selection with a total order of
/// (elevation descending, slice position ascending); the result is
/// bit-for-bit the first `k` elements of [`visible_from_positions`]'s
/// stable full sort filtered by `keep`.
pub fn visible_top_k_from_positions(
    satellites: &[Satellite],
    positions: &[Ecef],
    ground: Geodetic,
    min_elevation_deg: f64,
    k: usize,
    keep: impl FnMut(SatelliteId) -> bool,
) -> Vec<VisibleSatellite> {
    let g = ground.to_ecef();
    let found = collect_visible(satellites, positions, &g, min_elevation_deg, keep);
    if k == 0 {
        return Vec::new();
    }
    // Tag with the slice position so ties break exactly like the stable
    // elevation-only sort (candidates are collected in slice order).
    let mut tagged: Vec<(usize, VisibleSatellite)> = found.into_iter().enumerate().collect();
    let cmp = |a: &(usize, VisibleSatellite), b: &(usize, VisibleSatellite)| {
        b.1.elevation_deg.total_cmp(&a.1.elevation_deg).then(a.0.cmp(&b.0))
    };
    if tagged.len() > k {
        tagged.select_nth_unstable_by(k - 1, cmp);
        tagged.truncate(k);
    }
    tagged.sort_unstable_by(cmp);
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// Reusable buffers for the batched (struct-of-arrays) visibility scans:
/// the per-satellite culling verdicts and the tagged candidate list the
/// top-k selection runs over. One scratch per worker makes the
/// steady-state epoch loop allocation-free once the buffers are warm.
#[derive(Debug, Default)]
pub struct VisScratch {
    /// 1 where the conservative dot-product bound cannot rule the
    /// satellite out (recomputed per scan).
    pass: Vec<u8>,
    /// Candidates tagged with their collection order for tie-breaking.
    tagged: Vec<(usize, VisibleSatellite)>,
}

/// The culling threshold over a struct-of-arrays snapshot: identical to
/// [`cull_threshold`] but reading the precomputed fleet-wide maximum
/// radius² off the snapshot instead of rescanning every position.
fn cull_threshold_soa(g2: f64, soa: &PositionsSoa, min_elevation_deg: f64) -> Option<(f64, f64)> {
    let r2_max = soa.r2_max();
    if r2_max <= 0.0 || g2 <= 0.0 {
        return None;
    }
    let c = max_central_angle_cos(g2.sqrt(), r2_max.sqrt(), min_elevation_deg);
    (c > 0.0).then_some((c * c, g2))
}

/// Batched candidate collection over SoA columns, writing tagged
/// candidates into `scratch.tagged` (cleared first) in slice order.
///
/// Two passes: a branch-free sweep evaluates the conservative culling
/// bound for every satellite over the contiguous x/y/z/p2 columns (the
/// compiler autovectorizes the two fused comparisons per lane), then only
/// the survivors — a dozen out of 1296 for a Starlink shell — pay the
/// `keep` lookup and the exact `asin`/`sqrt` elevation math. Reordering
/// `keep` after the cull is sound because the two filters are
/// independent; candidates still arrive in slice order, so the result is
/// bit-for-bit the scalar [`collect_visible`] set. (A stateful `keep`
/// closure would observe fewer calls than the scalar path makes — the
/// schedulers pass pure liveness lookups.)
fn collect_visible_batched(
    satellites: &[Satellite],
    soa: &PositionsSoa,
    g: &Ecef,
    min_elevation_deg: f64,
    mut keep: impl FnMut(SatelliteId) -> bool,
    scratch: &mut VisScratch,
) {
    debug_assert_eq!(satellites.len(), soa.len());
    let n = satellites.len();
    let g2 = g.x * g.x + g.y * g.y + g.z * g.z;
    scratch.tagged.clear();
    scratch.pass.clear();
    scratch.pass.resize(n, 1);
    if let Some((c2, g2)) = cull_threshold_soa(g2, soa, min_elevation_deg) {
        let (xs, ys, zs, p2s) = (soa.x(), soa.y(), soa.z(), soa.p2());
        let t = c2 * g2;
        // cos γ ≥ c  ⇔  d ≥ 0 ∧ d² ≥ c²·|g|²·|p|²  (c > 0) — the same
        // reject test as the scalar path, evaluated branch-free over
        // zipped column slices (no index bound checks in the hot loop).
        for ((((pass, x), y), z), p2) in
            scratch.pass[..n].iter_mut().zip(xs).zip(ys).zip(zs).zip(p2s)
        {
            let d = g.x * x + g.y * y + g.z * z;
            *pass = ((d > 0.0) & (d * d >= t * p2)) as u8;
        }
    }
    let VisScratch { pass, tagged } = scratch;
    let mut survivor = |i: usize| {
        let sat = &satellites[i];
        if !keep(sat.id) {
            return;
        }
        let p = soa.ecef(i);
        let (el, range) = elevation_and_range(g, &p);
        if el >= min_elevation_deg {
            let tag = tagged.len();
            tagged.push((
                tag,
                VisibleSatellite { id: sat.id, elevation_deg: el, slant_range_km: range },
            ));
        }
    };
    // Walk the verdicts eight at a time: for a Starlink shell ~97 % of
    // the words are all-zero, so one u64 compare skips eight satellites.
    let words = pass[..n].chunks_exact(8);
    let tail_start = n - words.remainder().len();
    for (w, chunk) in words.enumerate() {
        if u64::from_ne_bytes(chunk.try_into().unwrap()) == 0 {
            continue;
        }
        for (j, &v) in chunk.iter().enumerate() {
            if v != 0 {
                survivor(w * 8 + j);
            }
        }
    }
    for (i, &v) in pass[..n].iter().enumerate().skip(tail_start) {
        if v != 0 {
            survivor(i);
        }
    }
}

/// Total order shared by the top-k selection and the full sort:
/// elevation descending, collection order ascending (so ties break
/// exactly like a stable elevation-only sort).
fn by_elevation_then_order(
    a: &(usize, VisibleSatellite),
    b: &(usize, VisibleSatellite),
) -> std::cmp::Ordering {
    b.1.elevation_deg.total_cmp(&a.1.elevation_deg).then(a.0.cmp(&b.0))
}

/// Batched, allocation-free [`visible_from_positions`]: the full sorted
/// visible list computed over a struct-of-arrays snapshot into a caller
/// buffer. Bit-for-bit the scalar function's output.
pub fn visible_into(
    satellites: &[Satellite],
    soa: &PositionsSoa,
    ground: Geodetic,
    min_elevation_deg: f64,
    scratch: &mut VisScratch,
    out: &mut Vec<VisibleSatellite>,
) {
    let g = ground.to_ecef();
    collect_visible_batched(satellites, soa, &g, min_elevation_deg, |_| true, scratch);
    scratch.tagged.sort_unstable_by(by_elevation_then_order);
    out.clear();
    out.extend(scratch.tagged.iter().map(|&(_, v)| v));
}

/// Batched, allocation-free [`visible_top_k_from_positions`]: the `k`
/// best visible satellites computed over a struct-of-arrays snapshot
/// into a caller buffer. Bit-for-bit the scalar function's output for
/// any pure `keep` filter.
#[allow(clippy::too_many_arguments)]
pub fn visible_top_k_into(
    satellites: &[Satellite],
    soa: &PositionsSoa,
    ground: Geodetic,
    min_elevation_deg: f64,
    k: usize,
    keep: impl FnMut(SatelliteId) -> bool,
    scratch: &mut VisScratch,
    out: &mut Vec<VisibleSatellite>,
) {
    out.clear();
    if k == 0 {
        return;
    }
    let g = ground.to_ecef();
    collect_visible_batched(satellites, soa, &g, min_elevation_deg, keep, scratch);
    let tagged = &mut scratch.tagged;
    if tagged.len() > k {
        tagged.select_nth_unstable_by(k - 1, by_elevation_then_order);
        tagged.truncate(k);
    }
    tagged.sort_unstable_by(by_elevation_then_order);
    out.extend(tagged.iter().map(|&(_, v)| v));
}

/// Maximum slant range to a satellite at `altitude_km` that is still above
/// `min_elevation_deg` (law of cosines on the Earth-centred triangle).
pub fn max_slant_range_km(altitude_km: f64, min_elevation_deg: f64) -> f64 {
    let re = EARTH_RADIUS_KM;
    let rs = re + altitude_km;
    let el = min_elevation_deg.to_radians();
    // range = -Re sin(el) + sqrt(Rs^2 - Re^2 cos^2(el))
    -re * el.sin() + (rs * rs - re * re * el.cos() * el.cos()).sqrt()
}

/// One visibility pass of a satellite over a ground location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pass {
    /// Acquisition of signal (first epoch above the mask).
    pub aos: SimTime,
    /// Loss of signal (last epoch above the mask).
    pub los: SimTime,
    /// Peak elevation during the pass, degrees.
    pub max_elevation_deg: f64,
}

impl Pass {
    /// Pass duration.
    pub fn duration(&self) -> SimDuration {
        self.los.saturating_sub(self.aos)
    }
}

/// Predict the visibility passes of one satellite over `ground` within
/// `[start, start + window]`, sampled every `step`.
///
/// This is the substrate API behind §3.1.1's "a satellite serves a given
/// location for less than ten minutes": passes of the 550 km shell above
/// a 25° mask last single-digit minutes.
pub fn predict_passes(
    satellite: &Satellite,
    ground: Geodetic,
    start: SimTime,
    window: SimDuration,
    step: SimDuration,
    min_elevation_deg: f64,
) -> Vec<Pass> {
    assert!(step.as_millis() > 0, "step must be positive");
    let g = ground.to_ecef();
    let mut passes = Vec::new();
    let mut current: Option<Pass> = None;
    let mut t = start;
    let end = start + window;
    while t <= end {
        let p = satellite.orbit.position_eci(t).to_ecef(t);
        let (el, _) = elevation_and_range(&g, &p);
        if el >= min_elevation_deg {
            match current.as_mut() {
                Some(pass) => {
                    pass.los = t;
                    pass.max_elevation_deg = pass.max_elevation_deg.max(el);
                }
                None => {
                    current = Some(Pass { aos: t, los: t, max_elevation_deg: el });
                }
            }
        } else if let Some(pass) = current.take() {
            passes.push(pass);
        }
        t += step;
    }
    if let Some(pass) = current {
        passes.push(pass);
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::WalkerConstellation;
    use proptest::prelude::*;

    /// The pre-culling exact scan, kept as the test oracle.
    fn visible_brute_force(
        satellites: &[Satellite],
        positions: &[Ecef],
        ground: Geodetic,
        min_elevation_deg: f64,
    ) -> Vec<VisibleSatellite> {
        let g = ground.to_ecef();
        let mut out: Vec<VisibleSatellite> = satellites
            .iter()
            .zip(positions)
            .filter_map(|(sat, p)| {
                let (el, range) = elevation_and_range(&g, p);
                (el >= min_elevation_deg).then_some(VisibleSatellite {
                    id: sat.id,
                    elevation_deg: el,
                    slant_range_km: range,
                })
            })
            .collect();
        out.sort_by(|a, b| b.elevation_deg.total_cmp(&a.elevation_deg));
        out
    }

    #[test]
    fn culled_scan_is_bit_for_bit_the_exact_scan() {
        use crate::propagator::SnapshotPropagator;
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let mut snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        for (lat, lon) in [(40.7, -74.0), (0.0, 0.0), (51.5, -0.1), (-33.9, 151.2), (65.0, 25.0)] {
            let g = Geodetic::from_degrees(lat, lon, 0.0);
            for secs in [0u64, 137, 1234, 5000] {
                snap.advance_to(SimTime::from_secs(secs));
                for mask in [5.0, 25.0, 40.0] {
                    let fast = visible_from_positions(snap.satellites(), snap.positions(), g, mask);
                    let slow = visible_brute_force(snap.satellites(), snap.positions(), g, mask);
                    assert_eq!(fast.len(), slow.len(), "({lat},{lon}) t={secs} mask={mask}");
                    for (a, b) in fast.iter().zip(&slow) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.elevation_deg.to_bits(), b.elevation_deg.to_bits());
                        assert_eq!(a.slant_range_km.to_bits(), b.slant_range_km.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_is_prefix_of_full_sort() {
        use crate::propagator::SnapshotPropagator;
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let mut snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let g = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        for secs in [0u64, 450, 3600] {
            snap.advance_to(SimTime::from_secs(secs));
            let full = visible_from_positions(snap.satellites(), snap.positions(), g, 25.0);
            for k in [0usize, 1, 3, 4, 10, 100] {
                let top = visible_top_k_from_positions(
                    snap.satellites(),
                    snap.positions(),
                    g,
                    25.0,
                    k,
                    |_| true,
                );
                assert_eq!(top.len(), k.min(full.len()), "k={k}");
                for (a, b) in top.iter().zip(&full) {
                    assert_eq!(a.id, b.id, "k={k} t={secs}");
                    assert_eq!(a.elevation_deg.to_bits(), b.elevation_deg.to_bits());
                }
            }
        }
    }

    #[test]
    fn batched_scans_are_bit_for_bit_the_scalar_scans() {
        use crate::propagator::SnapshotPropagator;
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let mut snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let mut scratch = VisScratch::default();
        let mut out = Vec::new();
        for (lat, lon) in [(40.7, -74.0), (0.0, 0.0), (-33.9, 151.2), (65.0, 25.0)] {
            let g = Geodetic::from_degrees(lat, lon, 0.0);
            for secs in [0u64, 137, 5000] {
                snap.advance_to(SimTime::from_secs(secs));
                for mask in [5.0, 25.0, 40.0] {
                    let scalar =
                        visible_from_positions(snap.satellites(), snap.positions(), g, mask);
                    visible_into(
                        snap.satellites(),
                        snap.positions_soa(),
                        g,
                        mask,
                        &mut scratch,
                        &mut out,
                    );
                    assert_eq!(out.len(), scalar.len(), "({lat},{lon}) t={secs} mask={mask}");
                    for (a, b) in out.iter().zip(&scalar) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.elevation_deg.to_bits(), b.elevation_deg.to_bits());
                        assert_eq!(a.slant_range_km.to_bits(), b.slant_range_km.to_bits());
                    }
                    for k in [0usize, 1, 4, 100] {
                        let scalar_k = visible_top_k_from_positions(
                            snap.satellites(),
                            snap.positions(),
                            g,
                            mask,
                            k,
                            |_| true,
                        );
                        visible_top_k_into(
                            snap.satellites(),
                            snap.positions_soa(),
                            g,
                            mask,
                            k,
                            |_| true,
                            &mut scratch,
                            &mut out,
                        );
                        assert_eq!(out, scalar_k, "k={k} ({lat},{lon}) t={secs} mask={mask}");
                    }
                }
            }
        }
    }

    #[test]
    fn batched_top_k_respects_keep_filter_like_scalar() {
        use crate::propagator::SnapshotPropagator;
        let shell = WalkerConstellation::starlink_shell1();
        let snap = SnapshotPropagator::new(shell.satellites(), shell.sats_per_plane);
        let g = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        let full = visible_from_positions(snap.satellites(), snap.positions(), g, 25.0);
        assert!(full.len() >= 2);
        let banned = full[0].id;
        let scalar =
            visible_top_k_from_positions(snap.satellites(), snap.positions(), g, 25.0, 4, |id| {
                id != banned
            });
        let mut scratch = VisScratch::default();
        let mut out = Vec::new();
        visible_top_k_into(
            snap.satellites(),
            snap.positions_soa(),
            g,
            25.0,
            4,
            |id| id != banned,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, scalar);
        assert!(!out.iter().any(|v| v.id == banned));
    }

    #[test]
    fn top_k_respects_keep_filter() {
        use crate::propagator::SnapshotPropagator;
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        let g = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        let full = visible_from_positions(snap.satellites(), snap.positions(), g, 25.0);
        assert!(full.len() >= 2);
        let banned = full[0].id;
        let top =
            visible_top_k_from_positions(snap.satellites(), snap.positions(), g, 25.0, 4, |id| {
                id != banned
            });
        assert!(!top.iter().any(|v| v.id == banned));
        assert_eq!(top[0].id, full[1].id, "next-best satellite moves up");
    }

    proptest! {
        /// §-critical safety property of the fast path: the conservative
        /// bound may only reject satellites that are *below* the mask —
        /// random ground points × orbital phases never produce an
        /// above-mask satellite that fails the dot-product test.
        #[test]
        fn prop_cull_bound_never_rejects_visible(
            lat in -85.0f64..85.0, lon in -180.0f64..180.0,
            alt in 300.0f64..2000.0, inc in 20.0f64..110.0,
            raan in 0.0f64..360.0, phase in 0.0f64..360.0,
            secs in 0u64..86400, mask in 5.0f64..60.0,
        ) {
            use crate::kepler::CircularOrbit;
            let orbit = CircularOrbit::from_degrees(alt, inc, raan, phase);
            let t = SimTime::from_secs(secs);
            let p = orbit.position_eci(t).to_ecef(t);
            let g = Geodetic::from_degrees(lat, lon, 0.0).to_ecef();
            let (el, _) = elevation_and_range(&g, &p);
            // Vacuously true below the mask; the bound only promises
            // never to cull an *above-mask* satellite.
            if el >= mask {
                let g2 = g.x * g.x + g.y * g.y + g.z * g.z;
                let p2 = p.x * p.x + p.y * p.y + p.z * p.z;
                let c = max_central_angle_cos(g2.sqrt(), p2.sqrt(), mask);
                let d = g.x * p.x + g.y * p.y + g.z * p.z;
                // An above-mask satellite must pass the conservative test.
                prop_assert!(d > 0.0, "above-mask satellite culled by sign test (el={el})");
                prop_assert!(
                    d * d >= c * c * g2 * p2,
                    "above-mask satellite culled by angle bound (el={el}, mask={mask})"
                );
            }
        }
    }

    #[test]
    fn zenith_satellite_has_90_deg_elevation() {
        let ground = Geodetic::from_degrees(0.0, 0.0, 0.0).to_ecef();
        let sat = Geodetic::from_degrees(0.0, 0.0, 550.0).to_ecef();
        let (el, range) = elevation_and_range(&ground, &sat);
        assert!((el - 90.0).abs() < 1e-9);
        assert!((range - 550.0).abs() < 1e-6);
    }

    #[test]
    fn antipodal_satellite_below_horizon() {
        let ground = Geodetic::from_degrees(0.0, 0.0, 0.0).to_ecef();
        let sat = Geodetic::from_degrees(0.0, 180.0, 550.0).to_ecef();
        let (el, _) = elevation_and_range(&ground, &sat);
        assert!(el < -80.0);
    }

    #[test]
    fn max_slant_range_sane() {
        // At 25° mask and 550 km altitude the max range is ~1120 km.
        let r = max_slant_range_km(550.0, 25.0);
        assert!((1000.0..1300.0).contains(&r), "max range {r}");
        // At zenith-only (90°) the range equals the altitude.
        assert!((max_slant_range_km(550.0, 90.0) - 550.0).abs() < 1e-6);
    }

    #[test]
    fn mid_latitude_user_sees_ten_plus_satellites() {
        // The paper: "a Starlink user can connect to 10+ satellites".
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let nyc = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        let mut counts = Vec::new();
        for mins in (0..95).step_by(5) {
            let vis = visible_satellites(&sats, nyc, SimTime::from_mins(mins), 25.0);
            counts.push(vis.len());
        }
        let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(avg >= 8.0, "avg visible = {avg} ({counts:?})");
    }

    #[test]
    fn visibility_sorted_by_elevation() {
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let vis = visible_satellites(
            &sats,
            Geodetic::from_degrees(35.0, 10.0, 0.0),
            SimTime::from_secs(777),
            25.0,
        );
        for w in vis.windows(2) {
            assert!(w[0].elevation_deg >= w[1].elevation_deg);
        }
        for v in &vis {
            assert!(v.elevation_deg >= 25.0);
            assert!(v.slant_range_km <= max_slant_range_km(550.0, 25.0) + 1.0);
        }
    }

    #[test]
    fn snapshot_path_agrees_with_direct_path() {
        use crate::propagator::SnapshotPropagator;
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let t = SimTime::from_secs(450);
        let mut snap = SnapshotPropagator::new(sats.clone(), shell.sats_per_plane);
        snap.advance_to(t);
        let g = Geodetic::from_degrees(48.0, 16.0, 0.0);
        let a = visible_satellites(&sats, g, t, 25.0);
        let b = visible_from_positions(snap.satellites(), snap.positions(), g, 25.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert!((x.elevation_deg - y.elevation_deg).abs() < 1e-9);
        }
    }

    #[test]
    fn gsl_delay_matches_table1_band() {
        // Table 1: GSL delay min 1.82 ms, avg 2.94 ms. Our geometric band:
        // zenith 550 km → 1.83 ms; max range ~1120 km → ~3.7 ms.
        assert!((propagation_delay_ms_f64(550.0) - 1.83).abs() < 0.05);
        let max_ms = propagation_delay_ms_f64(max_slant_range_km(550.0, 25.0));
        assert!((3.0..4.2).contains(&max_ms), "max GSL delay {max_ms} ms");
    }

    #[test]
    fn propagation_delay_rounding() {
        let d = propagation_delay_km(2998.0);
        assert_eq!(d.as_millis(), 10);
    }

    #[test]
    fn passes_last_single_digit_minutes() {
        // §3.1.1: a satellite serves a location for under ten minutes.
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let nyc = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        let mut all_passes = Vec::new();
        for sat in sats.iter().step_by(37) {
            all_passes.extend(predict_passes(
                sat,
                nyc,
                SimTime::ZERO,
                SimDuration::from_secs(6 * 3600),
                SimDuration::from_secs(15),
                25.0,
            ));
        }
        assert!(!all_passes.is_empty(), "six hours must contain passes");
        for p in &all_passes {
            assert!(p.los >= p.aos);
            assert!(
                p.duration() <= SimDuration::from_secs(600),
                "pass of {} exceeds ten minutes",
                p.duration()
            );
            assert!(p.max_elevation_deg >= 25.0 && p.max_elevation_deg <= 90.0);
        }
        let longest = all_passes.iter().map(|p| p.duration().as_millis()).max().unwrap();
        assert!(longest >= 60_000, "longest pass only {longest} ms — sampling broken?");
    }

    #[test]
    fn passes_are_disjoint_and_ordered() {
        let shell = WalkerConstellation::starlink_shell1();
        let sat = shell.satellites()[40];
        let passes = predict_passes(
            &sat,
            Geodetic::from_degrees(48.0, 16.0, 0.0),
            SimTime::ZERO,
            SimDuration::from_secs(12 * 3600),
            SimDuration::from_secs(15),
            25.0,
        );
        for w in passes.windows(2) {
            assert!(w[0].los < w[1].aos, "overlapping passes");
        }
    }

    #[test]
    fn no_passes_for_polar_ground_site() {
        let shell = WalkerConstellation::starlink_shell1();
        let sat = shell.satellites()[0];
        let passes = predict_passes(
            &sat,
            Geodetic::from_degrees(89.0, 0.0, 0.0),
            SimTime::ZERO,
            SimDuration::from_secs(3600),
            SimDuration::from_secs(15),
            25.0,
        );
        assert!(passes.is_empty());
    }

    #[test]
    fn polar_user_sees_nothing_in_53_deg_shell() {
        let shell = WalkerConstellation::starlink_shell1();
        let sats = shell.satellites();
        let pole = Geodetic::from_degrees(89.0, 0.0, 0.0);
        let vis = visible_satellites(&sats, pole, SimTime::from_mins(7), 25.0);
        assert!(vis.is_empty(), "polar user saw {} satellites", vis.len());
    }
}
