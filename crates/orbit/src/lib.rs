//! Orbital mechanics substrate for the StarCDN reproduction.
//!
//! The paper simulates satellite motion with Microsoft's CosmicBeats
//! simulator fed by CelesTrak TLE data for the Starlink 53°-inclination
//! Gen-1 shell. This crate replaces that substrate with an analytic
//! circular-orbit Keplerian propagator (with J2 nodal regression), a
//! Walker-delta constellation builder matching that shell, a TLE parser,
//! coordinate transforms, ground-track computation, and line-of-sight
//! visibility between ground locations and satellites.
//!
//! Starlink shell-1 orbits have eccentricity below 0.002, so the circular
//! model reproduces ground tracks and fields of view to well under a beam
//! width — the properties the CDN simulation actually consumes (which
//! satellites a user can see, and at what slant range).
//!
//! # Quick example
//!
//! ```
//! use starcdn_orbit::{walker::WalkerConstellation, time::SimTime, coords::Geodetic};
//! use starcdn_orbit::visibility::visible_satellites;
//!
//! let shell = WalkerConstellation::starlink_shell1();
//! let sats = shell.satellites();
//! assert_eq!(sats.len(), 72 * 18);
//! let nyc = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
//! let t = SimTime::from_secs(3600);
//! let vis = visible_satellites(&sats, nyc, t, 25.0);
//! assert!(!vis.is_empty());
//! ```

pub mod coords;
pub mod fleet;
pub mod groundtrack;
pub mod kepler;
pub mod propagator;
pub mod time;
pub mod tle;
pub mod visibility;
pub mod walker;

pub use coords::{Ecef, Eci, Geodetic};
pub use kepler::{CircularOrbit, OrbitalElements};
pub use propagator::{Propagator, SatelliteState};
pub use time::SimTime;
pub use walker::{SatelliteId, WalkerConstellation};

/// Physical constants used throughout the crate.
pub mod constants {
    /// Mean Earth radius in kilometres (WGS-84 mean).
    pub const EARTH_RADIUS_KM: f64 = 6371.0;
    /// Earth's standard gravitational parameter, km^3/s^2.
    pub const MU_EARTH: f64 = 398_600.441_8;
    /// Earth's rotation rate, rad/s (sidereal).
    pub const EARTH_ROTATION_RAD_S: f64 = 7.292_115_9e-5;
    /// Speed of light in km/s.
    pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;
    /// J2 zonal harmonic coefficient of the Earth.
    pub const J2: f64 = 1.082_626_68e-3;
    /// Equatorial Earth radius in kilometres (used by the J2 model).
    pub const EARTH_EQ_RADIUS_KM: f64 = 6378.137;
    /// Default Starlink shell-1 altitude in kilometres.
    pub const STARLINK_ALTITUDE_KM: f64 = 550.0;
    /// Default Starlink shell-1 inclination in degrees.
    pub const STARLINK_INCLINATION_DEG: f64 = 53.0;
}

#[cfg(test)]
mod tests {
    use super::constants::*;

    #[test]
    fn orbital_period_near_ninety_minutes() {
        // The paper repeatedly cites a ~90 minute orbit for 550 km altitude.
        let a = EARTH_RADIUS_KM + STARLINK_ALTITUDE_KM;
        let period = 2.0 * std::f64::consts::PI * (a * a * a / MU_EARTH).sqrt();
        assert!(period > 85.0 * 60.0 && period < 100.0 * 60.0, "period = {period}");
    }
}
