//! Ground-track (sub-satellite point) computation.
//!
//! Reproduces the geometry behind the paper's Fig. 3: the trajectory of a
//! satellite and of its neighbour three planes to the west nearly
//! coincide one period later, which is why relayed fetch from the west
//! inter-orbit neighbour recovers a "historical footprint" of requests.

use crate::coords::Geodetic;
use crate::kepler::CircularOrbit;
use crate::time::{SimDuration, SimTime};

/// One sample of a ground track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    pub time: SimTime,
    pub point: Geodetic,
}

/// Sample the sub-satellite point of `orbit` from `start` for `duration`
/// every `step`.
pub fn ground_track(
    orbit: &CircularOrbit,
    start: SimTime,
    duration: SimDuration,
    step: SimDuration,
) -> Vec<TrackPoint> {
    assert!(step.as_millis() > 0, "step must be positive");
    let mut out = Vec::new();
    let mut t = start;
    let end = start + duration;
    while t <= end {
        let g = orbit.position_eci(t).to_ecef(t).to_geodetic();
        out.push(TrackPoint { time: t, point: Geodetic { alt_km: 0.0, ..g } });
        t += step;
    }
    out
}

/// Mean great-circle distance (km) between two tracks sampled at the same
/// times, after shifting the second track by `shift`.
///
/// Used to quantify Fig. 3's claim: `track_similarity(east_orbit, west_orbit,
/// one_period)` is small because the west neighbour covered (almost) the
/// same ground one period earlier.
pub fn track_similarity_km(
    a: &CircularOrbit,
    b: &CircularOrbit,
    b_shift: SimDuration,
    samples: usize,
    step: SimDuration,
) -> f64 {
    assert!(samples > 0);
    let mut total = 0.0;
    for k in 0..samples {
        let t = SimTime::from_millis(k as u64 * step.as_millis());
        let pa = a.position_eci(t).to_ecef(t).to_geodetic();
        let tb = t + b_shift;
        let pb = b.position_eci(tb).to_ecef(tb).to_geodetic();
        total += pa.haversine_km(&pb);
    }
    total / samples as f64
}

/// How long a satellite stays within `radius_km` (surface distance) of a
/// ground point during `[start, start+duration]`, in simulation time.
///
/// This quantifies the paper's "a satellite serves a given location for
/// less than ten minutes".
pub fn dwell_time(
    orbit: &CircularOrbit,
    point: Geodetic,
    radius_km: f64,
    start: SimTime,
    duration: SimDuration,
    step: SimDuration,
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for tp in ground_track(orbit, start, duration, step) {
        if tp.point.haversine_km(&point) <= radius_km {
            total += step;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::{SatelliteId, WalkerConstellation};

    #[test]
    fn track_stays_within_inclination_band() {
        let shell = WalkerConstellation::starlink_shell1();
        let orbit = shell.orbit_for(SatelliteId::new(0, 0));
        let track = ground_track(
            &orbit,
            SimTime::ZERO,
            SimDuration::from_secs(6000),
            SimDuration::from_secs(15),
        );
        assert!(!track.is_empty());
        for tp in &track {
            assert!(tp.point.lat_deg().abs() <= 53.5);
            assert!(tp.point.alt_km.abs() < 1e-9);
        }
    }

    #[test]
    fn track_moves_between_samples() {
        let shell = WalkerConstellation::starlink_shell1();
        let orbit = shell.orbit_for(SatelliteId::new(10, 5));
        let track = ground_track(
            &orbit,
            SimTime::ZERO,
            SimDuration::from_secs(120),
            SimDuration::from_secs(15),
        );
        for w in track.windows(2) {
            let d = w[0].point.haversine_km(&w[1].point);
            // Ground speed ~7.3 km/s relative to surface → ~110 km per 15 s.
            assert!((50.0..200.0).contains(&d), "step moved {d} km");
        }
    }

    #[test]
    fn fig3_west_neighbor_retraces_track_one_period_later() {
        // Fig. 3's geometry: satellite vs its inter-orbit neighbours. The
        // best retrace offset across 1..=4 planes west should beat a random
        // same-plane comparison by a wide margin. (With 72 planes and a
        // ~95.6-min period the Earth rotates ~3.9 plane-spacings per
        // period, so the ~4-planes-west neighbour is the closest retrace —
        // the paper's Fig. 3 shows three planes for its TLE epoch.)
        let shell = WalkerConstellation::starlink_shell1();
        let east = shell.orbit_for(SatelliteId::new(10, 0));
        let period = SimDuration::from_secs_f64(east.period_s());
        let step = SimDuration::from_secs(30);

        let mut best = f64::INFINITY;
        let mut best_planes = 0u16;
        for planes_west in 1u16..=8 {
            let west = shell.orbit_for(SatelliteId::new(10 - planes_west, 0));
            // west(t) ≈ east(t + period): the east satellite retraces its
            // west neighbour's track one period later, possibly offset
            // along-track; search a small phase window for the alignment.
            for slot_shift in -3i64..=3 {
                let shift_ms = period.as_millis() as i64
                    + slot_shift * (east.period_s() * 1000.0 / 18.0) as i64;
                if shift_ms < 0 {
                    continue;
                }
                let sim = track_similarity_km(
                    &west,
                    &east,
                    SimDuration::from_millis(shift_ms as u64),
                    60,
                    step,
                );
                if sim < best {
                    best = sim;
                    best_planes = planes_west;
                }
            }
        }
        // Baseline: a satellite half the constellation away, no shift.
        let far = shell.orbit_for(SatelliteId::new(46, 9));
        let baseline = track_similarity_km(&east, &far, SimDuration::ZERO, 60, step);
        assert!(
            best < baseline * 0.25,
            "west-neighbour retrace {best:.0} km vs baseline {baseline:.0} km"
        );
        assert!(best < 700.0, "retrace distance {best:.0} km");
        // The Earth rotates ~4.8 plane spacings per period, so the best
        // retrace sits a handful of planes west (the paper's Fig. 3 shows
        // 3 planes for its TLE epoch).
        assert!((3..=6).contains(&best_planes), "best retrace at {best_planes} planes west");
    }

    #[test]
    fn dwell_time_under_ten_minutes() {
        // The paper: a LEO satellite serves a location for < 10 minutes.
        let shell = WalkerConstellation::starlink_shell1();
        let nyc = Geodetic::from_degrees(40.7128, -74.0060, 0.0);
        let mut max_dwell = SimDuration::ZERO;
        for (orbit_idx, slot) in
            (0..72).step_by(6).flat_map(|o| (0..18).step_by(3).map(move |s| (o, s)))
        {
            let orbit = shell.orbit_for(SatelliteId::new(orbit_idx, slot));
            let d = dwell_time(
                &orbit,
                nyc,
                940.0, // ground radius of the 25° elevation cone
                SimTime::ZERO,
                SimDuration::from_secs(6000),
                SimDuration::from_secs(15),
            );
            max_dwell = max_dwell.max(d);
        }
        assert!(max_dwell <= SimDuration::from_secs(600), "dwell = {max_dwell}");
        assert!(max_dwell > SimDuration::ZERO, "no satellite ever covered NYC");
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let shell = WalkerConstellation::test_shell();
        let orbit = shell.orbit_for(SatelliteId::new(0, 0));
        ground_track(&orbit, SimTime::ZERO, SimDuration::from_secs(10), SimDuration::ZERO);
    }
}
