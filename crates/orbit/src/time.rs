//! Simulation time.
//!
//! All simulation clocks in the workspace are measured in milliseconds from
//! an arbitrary epoch (the start of the run). Millisecond resolution is
//! enough for a trace-driven CDN simulation whose scheduler epoch is 15 s
//! and whose propagation delays are single-digit milliseconds, while `u64`
//! milliseconds comfortably cover the 5-day traces the paper replays.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in milliseconds since the run epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The run epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Construct from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        Self::from_mins(hours * 60)
    }

    /// Construct from whole days.
    pub fn from_days(days: u64) -> Self {
        Self::from_hours(days * 24)
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Time in whole seconds (truncated).
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Saturating subtraction of two instants, yielding a duration.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

/// A span of simulation time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Construct from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        Self::from_mins(hours * 60)
    }

    /// Construct from whole days.
    pub fn from_days(days: u64) -> Self {
        Self::from_hours(days * 24)
    }

    /// Construct from fractional seconds (rounded to the nearest ms).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * 1000.0).round().max(0.0) as u64)
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64
    }

    /// Duration in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.0 / 1000;
        let (d, rem) = (total_s / 86400, total_s % 86400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1000 {
            write!(f, "{}ms", self.0)
        } else {
            write!(f, "{:.2}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(5).as_millis(), 5000);
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3600));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_millis(250);
        assert_eq!(u.as_millis(), 250);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_sub(late), SimDuration::ZERO);
        assert_eq!(late.saturating_sub(early), SimDuration::from_secs(1));
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(0.00803);
        assert_eq!(d.as_millis(), 8);
        assert!((SimTime::from_millis(1234).as_secs_f64() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3661).to_string(), "01:01:01");
        assert_eq!(SimTime::from_days(2).to_string(), "2d00:00:00");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.00s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
