//! Walker-delta constellation builder.
//!
//! The paper simulates the Starlink 53° Gen-1 shell: 72 orbital planes at
//! 550 km, 18 slots per plane (1296 slots; 126 of which were out of slot
//! at collection time, leaving the 1170 active satellites the paper
//! simulates). A Walker-delta pattern distributes planes uniformly in
//! RAAN and satellites uniformly in phase, with an inter-plane phase
//! offset that staggers adjacent planes.

use crate::constants::{STARLINK_ALTITUDE_KM, STARLINK_INCLINATION_DEG};
use crate::kepler::CircularOrbit;
use crate::propagator::Satellite;
use serde::{Deserialize, Serialize};

/// Identifier of a satellite slot in a gridded constellation.
///
/// `orbit` indexes the plane (0..num_planes), `slot` the position within
/// the plane (0..sats_per_plane). This doubles as the grid coordinate used
/// by the ISL topology crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SatelliteId {
    pub orbit: u16,
    pub slot: u16,
}

impl SatelliteId {
    pub fn new(orbit: u16, slot: u16) -> Self {
        SatelliteId { orbit, slot }
    }

    /// Flatten to a dense index given the plane size.
    pub fn index(&self, sats_per_plane: u16) -> usize {
        self.orbit as usize * sats_per_plane as usize + self.slot as usize
    }

    /// Inverse of [`SatelliteId::index`].
    pub fn from_index(index: usize, sats_per_plane: u16) -> Self {
        SatelliteId {
            orbit: (index / sats_per_plane as usize) as u16,
            slot: (index % sats_per_plane as usize) as u16,
        }
    }
}

impl std::fmt::Display for SatelliteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}-{}", self.orbit, self.slot)
    }
}

/// A Walker-delta constellation description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkerConstellation {
    /// Number of orbital planes.
    pub num_planes: u16,
    /// Satellites per plane.
    pub sats_per_plane: u16,
    /// Altitude, km.
    pub altitude_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Walker phasing factor F: adjacent planes are offset by
    /// `F * 360 / (num_planes * sats_per_plane)` degrees of phase.
    pub phasing_factor: u16,
    /// RAAN spread in degrees: 360 for a full delta pattern (Starlink),
    /// 180 for a star pattern (e.g. Iridium).
    pub raan_spread_deg: f64,
}

impl WalkerConstellation {
    /// The Starlink shell-1 geometry the paper simulates: 72 planes × 18
    /// slots at 550 km / 53°.
    pub fn starlink_shell1() -> Self {
        WalkerConstellation {
            num_planes: 72,
            sats_per_plane: 18,
            altitude_km: STARLINK_ALTITUDE_KM,
            inclination_deg: STARLINK_INCLINATION_DEG,
            phasing_factor: 1,
            raan_spread_deg: 360.0,
        }
    }

    /// A small constellation for fast tests and examples (8 planes × 6).
    pub fn test_shell() -> Self {
        WalkerConstellation {
            num_planes: 8,
            sats_per_plane: 6,
            altitude_km: STARLINK_ALTITUDE_KM,
            inclination_deg: STARLINK_INCLINATION_DEG,
            phasing_factor: 1,
            raan_spread_deg: 360.0,
        }
    }

    /// Total number of slots.
    pub fn total_slots(&self) -> usize {
        self.num_planes as usize * self.sats_per_plane as usize
    }

    /// The orbit occupied by a given slot.
    pub fn orbit_for(&self, id: SatelliteId) -> CircularOrbit {
        debug_assert!(id.orbit < self.num_planes && id.slot < self.sats_per_plane);
        let raan_deg = self.raan_spread_deg * id.orbit as f64 / self.num_planes as f64;
        let intra_deg = 360.0 * id.slot as f64 / self.sats_per_plane as f64;
        let walker_offset_deg =
            360.0 * self.phasing_factor as f64 * id.orbit as f64 / self.total_slots() as f64;
        CircularOrbit::from_degrees(
            self.altitude_km,
            self.inclination_deg,
            raan_deg,
            intra_deg + walker_offset_deg,
        )
    }

    /// Materialize every slot as a [`Satellite`].
    pub fn satellites(&self) -> Vec<Satellite> {
        let mut out = Vec::with_capacity(self.total_slots());
        for orbit in 0..self.num_planes {
            for slot in 0..self.sats_per_plane {
                let id = SatelliteId::new(orbit, slot);
                out.push(Satellite { id, orbit: self.orbit_for(id) });
            }
        }
        out
    }

    /// Approximate intra-plane neighbour spacing (arc length), km.
    pub fn intra_plane_spacing_km(&self) -> f64 {
        let r = crate::constants::EARTH_RADIUS_KM + self.altitude_km;
        2.0 * std::f64::consts::PI * r / self.sats_per_plane as f64
    }

    /// Approximate inter-plane neighbour spacing at the equator, km.
    ///
    /// Chord between ascending nodes of adjacent planes; actual ISL length
    /// shrinks toward higher latitudes as planes converge.
    pub fn inter_plane_spacing_equator_km(&self) -> f64 {
        let r = crate::constants::EARTH_RADIUS_KM + self.altitude_km;
        let dray = (self.raan_spread_deg / self.num_planes as f64).to_radians();
        2.0 * r * (dray / 2.0).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn shell1_has_1296_slots() {
        let shell = WalkerConstellation::starlink_shell1();
        assert_eq!(shell.total_slots(), 1296);
        assert_eq!(shell.satellites().len(), 1296);
    }

    #[test]
    fn satellite_id_index_roundtrip() {
        let spp = 18;
        for idx in [0usize, 1, 17, 18, 1295] {
            let id = SatelliteId::from_index(idx, spp);
            assert_eq!(id.index(spp), idx);
        }
        assert_eq!(SatelliteId::new(71, 17).index(18), 1295);
    }

    #[test]
    fn raan_uniformly_spread() {
        let shell = WalkerConstellation::starlink_shell1();
        let o0 = shell.orbit_for(SatelliteId::new(0, 0));
        let o1 = shell.orbit_for(SatelliteId::new(1, 0));
        let o71 = shell.orbit_for(SatelliteId::new(71, 0));
        let step = (o1.raan_rad - o0.raan_rad).to_degrees();
        assert!((step - 5.0).abs() < 1e-9, "RAAN step = {step}");
        assert!((o71.raan_rad.to_degrees() - 355.0).abs() < 1e-9);
    }

    #[test]
    fn intra_plane_phase_uniform() {
        let shell = WalkerConstellation::starlink_shell1();
        let a = shell.orbit_for(SatelliteId::new(0, 0));
        let b = shell.orbit_for(SatelliteId::new(0, 1));
        assert!(((b.phase_rad - a.phase_rad).to_degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn spacing_matches_table1_link_lengths() {
        // Sanity-check against Table 1: intra-orbit ISL mean delay 8.03 ms
        // (~2400 km), inter-orbit mean 2.15 ms (~645 km, shorter at high
        // latitudes; equator value slightly above the mean).
        let shell = WalkerConstellation::starlink_shell1();
        let intra = shell.intra_plane_spacing_km();
        assert!((2300.0..2550.0).contains(&intra), "intra spacing {intra}");
        let inter = shell.inter_plane_spacing_equator_km();
        assert!((500.0..700.0).contains(&inter), "inter spacing {inter}");
    }

    #[test]
    fn all_satellites_distinct_positions() {
        // At t=0, no two satellites should coincide.
        let shell = WalkerConstellation::test_shell();
        let sats = shell.satellites();
        let t = SimTime::ZERO;
        for i in 0..sats.len() {
            for j in (i + 1)..sats.len() {
                let pi = sats[i].orbit.position_eci(t);
                let pj = sats[j].orbit.position_eci(t);
                let d =
                    ((pi.x - pj.x).powi(2) + (pi.y - pj.y).powi(2) + (pi.z - pj.z).powi(2)).sqrt();
                assert!(d > 10.0, "{} and {} coincide (d={d})", sats[i].id, sats[j].id);
            }
        }
    }

    #[test]
    fn walker_phasing_staggers_adjacent_planes() {
        let shell = WalkerConstellation::starlink_shell1();
        let a = shell.orbit_for(SatelliteId::new(0, 0));
        let b = shell.orbit_for(SatelliteId::new(1, 0));
        let expected = 360.0 / 1296.0;
        assert!(((b.phase_rad - a.phase_rad).to_degrees() - expected).abs() < 1e-9);
    }
}
