//! StarCDN system configuration.

use serde::{Deserialize, Serialize};
use starcdn_cache::policy::PolicyKind;
use starcdn_constellation::grid::GridTopology;
use starcdn_constellation::isl::LinkModel;

/// Which inter-orbit same-bucket neighbours a cache miss may relay to
/// (§3.3). The west neighbour retraces this satellite's ground track one
/// period earlier (Fig. 3) and is the profitable direction; east is kept
/// because it costs no extra latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelayPolicy {
    /// No relayed fetch (the "StarCDN-Fetch" ablation of §5.2).
    None,
    /// West inter-orbit neighbour only.
    WestOnly,
    /// East inter-orbit neighbour only.
    EastOnly,
    /// West first, then east (the full StarCDN design).
    Both,
}

impl RelayPolicy {
    /// Whether any relaying happens.
    pub fn enabled(self) -> bool {
        !matches!(self, RelayPolicy::None)
    }
}

/// Delayed-hit model parameters (DESIGN.md §14). With `fetch_epochs`
/// set to 0 the model is disabled and every serving path is
/// byte-identical to the plain hit/miss pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayedHitConfig {
    /// Epochs an origin fetch stays in flight after a miss. While it is
    /// outstanding, further requests for the object coalesce onto it as
    /// delayed hits; the object is admitted when the fetch lands. 0
    /// disables the model entirely.
    pub fetch_epochs: u64,
    /// Latency charged per epoch of fetch wait: a miss pays the fetch's
    /// in-flight epochs of it, a delayed hit only its residual epochs.
    pub wait_ms_per_epoch: f64,
    /// Origin latency heterogeneity: objects are spread deterministically
    /// over `origin_tiers` tiers, and an object in tier `t` (1-based)
    /// fetches in `fetch_epochs * t` epochs — different ground origins
    /// sit behind very different LEO paths. 1 (or 0) means a uniform
    /// origin: every fetch takes exactly `fetch_epochs`. Latency-aware
    /// eviction (MAD) only has room to beat hit-rate-maximising policies
    /// when tiers differ.
    pub origin_tiers: u64,
}

impl DelayedHitConfig {
    /// The model switched off (the default).
    pub fn disabled() -> Self {
        DelayedHitConfig { fetch_epochs: 0, wait_ms_per_epoch: 0.0, origin_tiers: 1 }
    }

    /// Fetches in flight for `fetch_epochs` epochs, each epoch of wait
    /// costing `wait_ms_per_epoch` milliseconds. Uniform origin.
    pub fn with_latency(fetch_epochs: u64, wait_ms_per_epoch: f64) -> Self {
        DelayedHitConfig { fetch_epochs, wait_ms_per_epoch, origin_tiers: 1 }
    }

    /// Spread objects over `tiers` origin-latency tiers (see
    /// [`origin_tiers`](Self::origin_tiers)).
    pub fn with_origin_tiers(mut self, tiers: u64) -> Self {
        self.origin_tiers = tiers;
        self
    }

    /// Whether the delayed-hit model is active.
    pub fn is_enabled(&self) -> bool {
        self.fetch_epochs > 0
    }

    /// In-flight epochs for a fetch of `object`: the base latency times
    /// the object's origin tier. Deterministic in the object id alone
    /// (split-mix finalizer, independent of the bucket-routing hash),
    /// so every serving path — engine, replayer, resumed checkpoint —
    /// charges the same fetch the same wait.
    pub fn fetch_epochs_for(&self, object: starcdn_cache::ObjectId) -> u64 {
        if self.origin_tiers <= 1 {
            return self.fetch_epochs;
        }
        let mut x = object.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        self.fetch_epochs * (1 + x % self.origin_tiers)
    }
}

impl Default for DelayedHitConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarCdnConfig {
    /// ISL grid (defaults to the 72×18 Starlink shell).
    pub grid: GridTopology,
    /// Number of consistent-hashing buckets `L` (perfect square). `None`
    /// disables hashing: every request is handled by its first-contact
    /// satellite (the "StarCDN-Hashing" ablation / Naive LRU baseline).
    pub num_buckets: Option<u32>,
    /// Relayed-fetch policy.
    pub relay: RelayPolicy,
    /// Per-satellite cache capacity, bytes.
    pub cache_capacity_bytes: u64,
    /// Eviction policy of each satellite cache.
    pub policy: PolicyKind,
    /// Link delay/bandwidth model for latency accounting.
    pub link_model: LinkModel,
    /// Record per-request neighbour availability on every miss
    /// (the Table-3 monitor; costs two probes per miss).
    pub probe_neighbors_on_miss: bool,
    /// Proactive prefetch (the §3.3 rejected alternative): every
    /// scheduler epoch, each satellite copies its west same-bucket
    /// neighbour's `top_k` hottest objects into its own cache. `None`
    /// disables it (StarCDN's choice — relayed fetch only reacts to
    /// actual misses, never wasting cache space, power, or ISL
    /// bandwidth on content nobody asks for).
    pub prefetch_top_k: Option<usize>,
    /// §3.4 failure response. `true` (StarCDN's long-term response):
    /// a dead satellite's bucket remaps to the next available satellite.
    /// `false` (the transient response): requests for a dead owner simply
    /// fall back to a ground fetch.
    pub remap_on_failure: bool,
    /// Add first-order transmission (serialization) delays to latency
    /// accounting: the response body is clocked out once per
    /// store-and-forward hop at that link's bandwidth. Off by default —
    /// the paper compares *idle* (propagation-only) latencies and leaves
    /// link-layer modelling to future work (§7).
    pub model_transmission_delay: bool,
    /// Delayed-hit model: in-flight origin fetches with request
    /// coalescing. Disabled by default (and absent from older
    /// serialized configs).
    #[serde(default)]
    pub delayed: DelayedHitConfig,
}

impl StarCdnConfig {
    /// The full StarCDN design: hashing with `L` buckets plus
    /// bidirectional relayed fetch.
    pub fn starcdn(num_buckets: u32, cache_capacity_bytes: u64) -> Self {
        StarCdnConfig {
            grid: GridTopology::starlink(),
            num_buckets: Some(num_buckets),
            relay: RelayPolicy::Both,
            cache_capacity_bytes,
            policy: PolicyKind::Lru,
            link_model: LinkModel::table1(),
            probe_neighbors_on_miss: false,
            prefetch_top_k: None,
            remap_on_failure: true,
            model_transmission_delay: false,
            delayed: DelayedHitConfig::disabled(),
        }
    }

    /// This configuration with the delayed-hit model switched on.
    pub fn with_delayed_hits(mut self, delayed: DelayedHitConfig) -> Self {
        self.delayed = delayed;
        self
    }

    /// The proactive-prefetch alternative the paper evaluated and
    /// rejected (§3.3): hashing plus per-epoch top-k prefetch from the
    /// west same-bucket neighbour, no reactive relay.
    pub fn starcdn_prefetch(num_buckets: u32, cache_capacity_bytes: u64, top_k: usize) -> Self {
        StarCdnConfig {
            relay: RelayPolicy::None,
            prefetch_top_k: Some(top_k),
            ..Self::starcdn(num_buckets, cache_capacity_bytes)
        }
    }

    /// "StarCDN-Fetch" (§5.2): consistent hashing only, no relayed fetch.
    pub fn starcdn_no_relay(num_buckets: u32, cache_capacity_bytes: u64) -> Self {
        StarCdnConfig {
            relay: RelayPolicy::None,
            ..Self::starcdn(num_buckets, cache_capacity_bytes)
        }
    }

    /// "StarCDN-Hashing" (§5.2): relayed fetch only, no hashing — every
    /// request served by the first-contact satellite, relaying to its
    /// immediate inter-orbit neighbours on a miss.
    pub fn starcdn_no_hashing(cache_capacity_bytes: u64) -> Self {
        StarCdnConfig { num_buckets: None, ..Self::starcdn(4, cache_capacity_bytes) }
    }

    /// Naive LRU baseline (past work): independent per-satellite LRU, no
    /// hashing, no relay.
    pub fn naive_lru(cache_capacity_bytes: u64) -> Self {
        StarCdnConfig {
            num_buckets: None,
            relay: RelayPolicy::None,
            ..Self::starcdn(4, cache_capacity_bytes)
        }
    }

    /// Inter-orbit planes between same-bucket neighbours: √L with
    /// hashing, 1 without (every satellite holds "the" bucket).
    pub fn relay_span_planes(&self) -> u16 {
        match self.num_buckets {
            Some(l) => (l as f64).sqrt().round() as u16,
            None => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_variants() {
        let full = StarCdnConfig::starcdn(9, 100);
        assert_eq!(full.num_buckets, Some(9));
        assert!(full.relay.enabled());

        let no_relay = StarCdnConfig::starcdn_no_relay(9, 100);
        assert_eq!(no_relay.relay, RelayPolicy::None);
        assert_eq!(no_relay.num_buckets, Some(9));

        let no_hash = StarCdnConfig::starcdn_no_hashing(100);
        assert_eq!(no_hash.num_buckets, None);
        assert!(no_hash.relay.enabled());

        let naive = StarCdnConfig::naive_lru(100);
        assert_eq!(naive.num_buckets, None);
        assert!(!naive.relay.enabled());
        assert_eq!(naive.policy, PolicyKind::Lru);
        assert_eq!(naive.prefetch_top_k, None);

        let prefetch = StarCdnConfig::starcdn_prefetch(4, 100, 32);
        assert_eq!(prefetch.prefetch_top_k, Some(32));
        assert!(!prefetch.relay.enabled());
        assert_eq!(prefetch.num_buckets, Some(4));
    }

    #[test]
    fn relay_span() {
        assert_eq!(StarCdnConfig::starcdn(4, 1).relay_span_planes(), 2);
        assert_eq!(StarCdnConfig::starcdn(9, 1).relay_span_planes(), 3);
        assert_eq!(StarCdnConfig::starcdn_no_hashing(1).relay_span_planes(), 1);
    }

    #[test]
    fn relay_policy_enabled() {
        assert!(!RelayPolicy::None.enabled());
        assert!(RelayPolicy::WestOnly.enabled());
        assert!(RelayPolicy::EastOnly.enabled());
        assert!(RelayPolicy::Both.enabled());
    }
}
