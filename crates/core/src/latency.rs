//! End-to-end propagation-delay model (§5.3).
//!
//! The paper estimates *idle* latency — propagation only, no queueing —
//! between a user issuing a request and the response arriving, and
//! compares against baselines from the Cloudflare AIM dataset analysis
//! of [Bose et al., HotNets '24]: regular Starlink (bent pipe to a
//! terrestrial CDN) has a ~55 ms median; terrestrial users reaching a
//! terrestrial CDN see ~20 ms.
//!
//! Legs of a StarCDN request:
//!
//! ```text
//! user ──GSL──▶ first-contact ──ISL×h──▶ bucket owner ─▶ (hit: return)
//!                                             │ miss
//!                                 relay: ISL×√L to west/east neighbour
//!                                             │ still miss
//!                                 GSL down ▶ ground station ─▶ origin
//! ```
//!
//! All legs are doubled (request out, response back).

use serde::{Deserialize, Serialize};
use starcdn_constellation::isl::{IslKind, LinkModel};

/// Terrestrial constants calibrated to the paper's baselines.
pub mod calibration {
    /// One-way ground-station→IXP→CDN-edge delay, ms. Chosen so the
    /// regular-Starlink (no cache) median RTT lands at the paper's
    /// ~55 ms: 2×(GSL + GSL + this) ≈ 55 with Table-1 GSL averages.
    pub const TERRESTRIAL_CDN_ONEWAY_MS: f64 = 21.6;
    /// One-way ground-station→origin delay, ms (origins sit behind the
    /// CDN edge; misses pay this instead).
    pub const ORIGIN_ONEWAY_MS: f64 = 30.0;
    /// Median RTT of a *terrestrial* user to a terrestrial CDN edge, ms
    /// (the "Terrestrial CDN" curve of Fig. 10).
    pub const TERRESTRIAL_USER_CDN_RTT_MS: f64 = 20.0;
}

/// The latency model: link-level delays plus terrestrial legs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    pub link: LinkModel,
    pub terrestrial_cdn_oneway_ms: f64,
    pub origin_oneway_ms: f64,
}

/// Serialization (transmission) delay of `size_bytes` over a link of
/// `bandwidth_gbps`, in milliseconds.
///
/// The paper's latency analysis is propagation-only ("idle latency");
/// §7 leaves link-layer modelling as future work. This helper is the
/// first-order piece of it: an object must also be *clocked out* onto
/// the link, which matters for multi-MB video objects on the 20 Gbps
/// GSL (1 MiB ≈ 0.42 ms) and is negligible on 100 Gbps ISLs.
pub fn transmission_delay_ms(size_bytes: u64, bandwidth_gbps: f64) -> f64 {
    if bandwidth_gbps <= 0.0 {
        return 0.0;
    }
    size_bytes as f64 * 8.0 / (bandwidth_gbps * 1e9) * 1000.0
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            link: LinkModel::table1(),
            terrestrial_cdn_oneway_ms: calibration::TERRESTRIAL_CDN_ONEWAY_MS,
            origin_oneway_ms: calibration::ORIGIN_ONEWAY_MS,
        }
    }
}

impl LatencyModel {
    /// One-way delay of an ISL route with the given hop mix.
    pub fn route_oneway_ms(&self, intra_hops: u16, inter_hops: u16) -> f64 {
        intra_hops as f64 * self.link.delay_ms(IslKind::IntraOrbit)
            + inter_hops as f64 * self.link.delay_ms(IslKind::InterOrbit)
    }

    /// RTT of a request served from the bucket owner's cache:
    /// user→first-contact (GSL) →owner (route), and back.
    pub fn space_hit_rtt_ms(&self, gsl_oneway_ms: f64, intra_hops: u16, inter_hops: u16) -> f64 {
        2.0 * (gsl_oneway_ms + self.route_oneway_ms(intra_hops, inter_hops))
    }

    /// RTT when the owner missed but a same-bucket neighbour
    /// `relay_span` inter-orbit planes away served the object.
    pub fn relay_hit_rtt_ms(
        &self,
        gsl_oneway_ms: f64,
        intra_hops: u16,
        inter_hops: u16,
        relay_span: u16,
    ) -> f64 {
        self.space_hit_rtt_ms(gsl_oneway_ms, intra_hops, inter_hops)
            + 2.0 * relay_span as f64 * self.link.delay_ms(IslKind::InterOrbit)
    }

    /// RTT when the object had to come from the origin via the ground:
    /// the full space path plus owner→ground GSL plus ground→origin,
    /// both ways. `relay_penalty_span` > 0 adds the wasted relay probes.
    pub fn ground_miss_rtt_ms(
        &self,
        gsl_oneway_ms: f64,
        intra_hops: u16,
        inter_hops: u16,
        relay_penalty_span: u16,
    ) -> f64 {
        self.space_hit_rtt_ms(gsl_oneway_ms, intra_hops, inter_hops)
            + 2.0 * relay_penalty_span as f64 * self.link.delay_ms(IslKind::InterOrbit)
            + 2.0 * (self.link.delay_ms(IslKind::Gsl) + self.origin_oneway_ms)
    }

    /// RTT of regular Starlink with no space cache (bent pipe to a
    /// terrestrial CDN edge): user→sat→GS→IXP→CDN and back.
    pub fn starlink_no_cache_rtt_ms(&self, gsl_oneway_ms: f64) -> f64 {
        2.0 * (gsl_oneway_ms + self.link.delay_ms(IslKind::Gsl) + self.terrestrial_cdn_oneway_ms)
    }

    /// RTT of a *terrestrial* user to a terrestrial CDN edge, jittered
    /// deterministically by `u ∈ [0,1)` to form a distribution around
    /// the calibrated median.
    pub fn terrestrial_cdn_rtt_ms(&self, u: f64) -> f64 {
        // Triangular-ish spread: median 20 ms, range ~[8, 45] ms.
        let med = calibration::TERRESTRIAL_USER_CDN_RTT_MS;
        if u < 0.5 {
            med * (0.4 + 1.2 * u)
        } else {
            med * (1.0 + 2.5 * (u - 0.5) * (u - 0.5) * 4.0)
        }
    }

    /// RTT of the Static Cache ideal: the cache hangs permanently above
    /// the user (GSL only) — on a miss it fetches from the ground.
    pub fn static_cache_rtt_ms(&self, gsl_oneway_ms: f64, hit: bool) -> f64 {
        if hit {
            2.0 * gsl_oneway_ms
        } else {
            2.0 * (gsl_oneway_ms + self.link.delay_ms(IslKind::Gsl) + self.origin_oneway_ms)
        }
    }
}

/// A latency CDF built from recorded samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyCdf {
    sorted_ms: Vec<f64>,
}

impl LatencyCdf {
    /// Build from raw samples (sorts a copy). Non-finite samples (NaN,
    /// ±∞) are dropped: they carry no latency information and would
    /// otherwise poison the top quantiles, since NaN total-orders above
    /// every real sample.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let mut samples: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        LatencyCdf { sorted_ms: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The `q`-quantile: `None` when the CDF is empty or `q` is not a
    /// finite number (a NaN `q` used to clamp silently to the minimum).
    /// Out-of-range finite `q` clamps into `[0, 1]`, so `quantile(0.0)`
    /// is the exact minimum and `quantile(1.0)` the exact maximum (p100),
    /// for any sample count including a single sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted_ms.is_empty() || !q.is_finite() {
            return None;
        }
        let idx = ((self.sorted_ms.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.sorted_ms[idx])
    }

    /// Median latency.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample (p0), `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted_ms.first().copied()
    }

    /// Largest sample (p100), `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted_ms.last().copied()
    }

    /// Fraction of samples ≤ `x` ms.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        self.sorted_ms.partition_point(|&v| v <= x) as f64 / self.sorted_ms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::default()
    }

    #[test]
    fn route_mixes_link_classes() {
        let m = model();
        // 1 intra (8.03) + 2 inter (2×2.15) = 12.33 one-way.
        assert!((m.route_oneway_ms(1, 2) - 12.33).abs() < 1e-9);
        assert_eq!(m.route_oneway_ms(0, 0), 0.0);
    }

    #[test]
    fn space_hit_is_round_trip() {
        let m = model();
        let rtt = m.space_hit_rtt_ms(2.94, 0, 1);
        assert!((rtt - 2.0 * (2.94 + 2.15)).abs() < 1e-9);
    }

    #[test]
    fn relay_adds_inter_orbit_span() {
        let m = model();
        let base = m.space_hit_rtt_ms(2.94, 0, 1);
        let relay = m.relay_hit_rtt_ms(2.94, 0, 1, 3);
        assert!((relay - base - 2.0 * 3.0 * 2.15).abs() < 1e-9);
    }

    #[test]
    fn miss_pays_origin() {
        let m = model();
        let hit = m.space_hit_rtt_ms(2.94, 1, 1);
        let miss = m.ground_miss_rtt_ms(2.94, 1, 1, 0);
        assert!((miss - hit - 2.0 * (2.94 + 30.0)).abs() < 1e-9);
        // A wasted relay probe makes the miss slower still.
        assert!(m.ground_miss_rtt_ms(2.94, 1, 1, 3) > miss);
    }

    #[test]
    fn starlink_no_cache_median_calibrated_to_55ms() {
        // §5.3: regular Starlink median RTT ≈ 55 ms.
        let m = model();
        let rtt = m.starlink_no_cache_rtt_ms(2.94);
        assert!((rtt - 55.0).abs() < 2.5, "no-cache RTT {rtt}");
    }

    #[test]
    fn starcdn_hit_beats_no_cache_by_more_than_2x() {
        // The headline: StarCDN improves user-perceived latency ~2.5×.
        let m = model();
        let hit = m.space_hit_rtt_ms(2.94, 0, 1); // typical L=4 route
        let nocache = m.starlink_no_cache_rtt_ms(2.94);
        assert!(nocache / hit > 2.5, "speedup only {}", nocache / hit);
    }

    #[test]
    fn terrestrial_cdn_distribution_median() {
        let m = model();
        let med = m.terrestrial_cdn_rtt_ms(0.5);
        assert!((med - 20.0).abs() < 1.0, "terrestrial median {med}");
        assert!(m.terrestrial_cdn_rtt_ms(0.05) < med);
        assert!(m.terrestrial_cdn_rtt_ms(0.95) > med);
    }

    #[test]
    fn static_cache_hit_is_pure_gsl() {
        let m = model();
        assert!((m.static_cache_rtt_ms(2.0, true) - 4.0).abs() < 1e-9);
        assert!(m.static_cache_rtt_ms(2.0, false) > 60.0);
    }

    #[test]
    fn transmission_delay_first_order() {
        // 1 MiB over the 20 Gbps GSL ≈ 0.42 ms.
        let d = transmission_delay_ms(1 << 20, 20.0);
        assert!((d - 0.4194).abs() < 0.001, "{d}");
        // Negligible over a 100 Gbps ISL.
        assert!(transmission_delay_ms(1 << 20, 100.0) < 0.1);
        // Degenerate bandwidth returns zero rather than infinity.
        assert_eq!(transmission_delay_ms(1000, 0.0), 0.0);
        assert_eq!(transmission_delay_ms(0, 20.0), 0.0);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = LatencyCdf::from_samples(vec![30.0, 10.0, 20.0, 40.0, 50.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.median(), Some(30.0));
        assert_eq!(cdf.quantile(0.0), Some(10.0));
        assert_eq!(cdf.quantile(1.0), Some(50.0));
        assert!((cdf.cdf_at(25.0) - 0.4).abs() < 1e-12);
        assert_eq!(cdf.cdf_at(1000.0), 1.0);
    }

    #[test]
    fn empty_cdf() {
        let cdf = LatencyCdf::default();
        assert!(cdf.is_empty());
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.quantile(0.0), None);
        assert_eq!(cdf.quantile(1.0), None);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.max(), None);
        assert_eq!(cdf.cdf_at(10.0), 0.0);
        // from_samples of nothing is the same as default.
        assert_eq!(LatencyCdf::from_samples(vec![]), cdf);
    }

    #[test]
    fn single_sample_cdf() {
        let cdf = LatencyCdf::from_samples(vec![42.0]);
        assert_eq!(cdf.len(), 1);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(cdf.quantile(q), Some(42.0), "q={q}");
        }
        assert_eq!(cdf.min(), Some(42.0));
        assert_eq!(cdf.max(), Some(42.0));
        assert_eq!(cdf.cdf_at(41.9), 0.0);
        assert_eq!(cdf.cdf_at(42.0), 1.0);
    }

    #[test]
    fn p100_is_exact_max_and_out_of_range_clamps() {
        let cdf = LatencyCdf::from_samples(vec![5.0, 1.0, 9.0, 3.0]);
        assert_eq!(cdf.quantile(1.0), Some(9.0));
        assert_eq!(cdf.max(), Some(9.0));
        // q outside [0,1] clamps rather than indexing out of bounds.
        assert_eq!(cdf.quantile(7.5), Some(9.0));
        assert_eq!(cdf.quantile(-2.0), Some(1.0));
        assert_eq!(cdf.min(), Some(1.0));
    }

    #[test]
    fn non_finite_q_is_rejected_not_silently_minimum() {
        let cdf = LatencyCdf::from_samples(vec![10.0, 20.0, 30.0]);
        // A NaN q used to clamp to index 0 and report the minimum.
        assert_eq!(cdf.quantile(f64::NAN), None);
        assert_eq!(cdf.quantile(f64::INFINITY), None);
        assert_eq!(cdf.quantile(f64::NEG_INFINITY), None);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let cdf =
            LatencyCdf::from_samples(vec![10.0, f64::NAN, 20.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(cdf.len(), 2);
        // Without filtering, NaN sorts above every real and p100 is NaN.
        assert_eq!(cdf.quantile(1.0), Some(20.0));
        assert_eq!(cdf.min(), Some(10.0));
    }
}
