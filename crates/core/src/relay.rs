//! Relayed fetch (§3.3): neighbour selection.
//!
//! On a cache miss at a bucket owner, StarCDN probes the *same-bucket*
//! inter-orbit neighbours — `√L` planes west (the satellite that just
//! retraced this ground track, per Fig. 3) and/or `√L` planes east.
//! Intra-orbit neighbours are never used: at 8 ms per hop they are ~4×
//! costlier than inter-orbit hops (Table 1).
//!
//! Under failures a neighbour slot may be out of service; its bucket
//! responsibilities were remapped (§3.4), so the probe follows the remap
//! to the satellite actually holding that neighbour's content.

use crate::config::RelayPolicy;
use crate::system::ServedFrom;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::grid::GridTopology;
use starcdn_orbit::walker::SatelliteId;

/// The neighbours a miss at `owner` may relay to, in probe order
/// (west first — the historically-useful direction — then east).
///
/// Each candidate is `(source_tag, satellite)`. Candidates equal to the
/// owner itself (possible after failure remapping collapses neighbours)
/// are dropped.
pub fn relay_candidates(
    grid: &GridTopology,
    owner: SatelliteId,
    span_planes: u16,
    policy: RelayPolicy,
    failures: &FailureModel,
) -> Vec<(ServedFrom, SatelliteId)> {
    let mut out = Vec::with_capacity(2);
    let mut push = |tag: ServedFrom, slot: SatelliteId| {
        if let Some(resolved) = failures.resolve_owner(grid, slot) {
            if resolved != owner && !out.iter().any(|&(_, s)| s == resolved) {
                out.push((tag, resolved));
            }
        }
    };
    match policy {
        RelayPolicy::None => {}
        RelayPolicy::WestOnly => push(ServedFrom::RelayWest, grid.west_by(owner, span_planes)),
        RelayPolicy::EastOnly => push(ServedFrom::RelayEast, grid.east_by(owner, span_planes)),
        RelayPolicy::Both => {
            push(ServedFrom::RelayWest, grid.west_by(owner, span_planes));
            push(ServedFrom::RelayEast, grid.east_by(owner, span_planes));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridTopology {
        GridTopology::starlink()
    }

    #[test]
    fn none_policy_no_candidates() {
        let c = relay_candidates(
            &grid(),
            SatelliteId::new(10, 5),
            2,
            RelayPolicy::None,
            &FailureModel::none(),
        );
        assert!(c.is_empty());
    }

    #[test]
    fn both_policy_west_first() {
        let owner = SatelliteId::new(10, 5);
        let c = relay_candidates(&grid(), owner, 3, RelayPolicy::Both, &FailureModel::none());
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], (ServedFrom::RelayWest, SatelliteId::new(7, 5)));
        assert_eq!(c[1], (ServedFrom::RelayEast, SatelliteId::new(13, 5)));
    }

    #[test]
    fn wraps_across_seam() {
        let c = relay_candidates(
            &grid(),
            SatelliteId::new(0, 5),
            2,
            RelayPolicy::WestOnly,
            &FailureModel::none(),
        );
        assert_eq!(c, vec![(ServedFrom::RelayWest, SatelliteId::new(70, 5))]);
    }

    #[test]
    fn dead_neighbor_follows_remap() {
        let owner = SatelliteId::new(10, 5);
        let west_slot = SatelliteId::new(8, 5);
        let failures = FailureModel::from_dead([west_slot]);
        let c = relay_candidates(&grid(), owner, 2, RelayPolicy::WestOnly, &failures);
        assert_eq!(c.len(), 1);
        // Remap walks north along the plane: (8, 6).
        assert_eq!(c[0].1, SatelliteId::new(8, 6));
    }

    #[test]
    fn candidate_equal_to_owner_dropped() {
        // Span that wraps all the way around to the owner itself.
        let owner = SatelliteId::new(10, 5);
        let c = relay_candidates(&grid(), owner, 72, RelayPolicy::Both, &FailureModel::none());
        assert!(c.is_empty(), "self-relay must be dropped: {c:?}");
    }

    #[test]
    fn duplicate_candidates_dedup() {
        // On a tiny 2-plane grid, west and east neighbours coincide.
        let g = GridTopology { num_planes: 2, sats_per_plane: 4, seamless: true };
        let owner = SatelliteId::new(0, 1);
        let c = relay_candidates(&g, owner, 1, RelayPolicy::Both, &FailureModel::none());
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].1, SatelliteId::new(1, 1));
    }
}
