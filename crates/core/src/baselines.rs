//! Evaluation baselines (§5.1).
//!
//! * **Naive LRU** — independent per-satellite LRU caches, as proposed by
//!   prior in-orbit-computing work. Built as a [`SpaceCdn`] with
//!   [`StarCdnConfig::naive_lru`]; nothing extra lives here.
//! * **Static Cache** — the unachievable ideal: no orbital motion, each
//!   location permanently served by its own dedicated cache.
//! * **No Cache** — today's Starlink: every byte crosses the uplink and
//!   every request pays the bent-pipe path to a terrestrial CDN.

use crate::latency::LatencyModel;
use crate::metrics::SystemMetrics;
use crate::system::ServedFrom;
use starcdn_cache::object::ObjectId;
use starcdn_cache::policy::{Cache, PolicyKind};
use starcdn_orbit::walker::SatelliteId;

#[allow(unused_imports)] // referenced by the module docs
use crate::config::StarCdnConfig;
#[allow(unused_imports)]
use crate::system::SpaceCdn;

/// The Static Cache ideal: one permanently-overhead cache per location.
pub struct StaticCacheBaseline {
    caches: Vec<Box<dyn Cache + Send>>,
    latency: LatencyModel,
    /// Aggregate run metrics (owner satellite ids are synthetic:
    /// `(u16::MAX, location)`).
    pub metrics: SystemMetrics,
}

impl StaticCacheBaseline {
    /// One cache of `capacity_bytes` per location.
    pub fn new(num_locations: usize, capacity_bytes: u64, policy: PolicyKind) -> Self {
        StaticCacheBaseline {
            caches: (0..num_locations).map(|_| policy.build(capacity_bytes)).collect(),
            latency: LatencyModel::default(),
            metrics: SystemMetrics::default(),
        }
    }

    /// Handle a request from `location`.
    pub fn handle_request(
        &mut self,
        location: usize,
        object: ObjectId,
        size: u64,
        gsl_oneway_ms: f64,
    ) -> (ServedFrom, f64) {
        let outcome = self.caches[location].access(object, size);
        let hit = outcome.is_hit();
        let latency = self.latency.static_cache_rtt_ms(gsl_oneway_ms, hit);
        let from = if hit { ServedFrom::LocalHit } else { ServedFrom::Ground };
        self.metrics.record(SatelliteId::new(u16::MAX, location as u16), from, size, latency);
        (from, latency)
    }
}

/// Today's Starlink: no cache in space at all.
pub struct NoCacheBaseline {
    latency: LatencyModel,
    /// Aggregate run metrics; every request is a ground fetch.
    pub metrics: SystemMetrics,
}

impl NoCacheBaseline {
    /// Build with the default (Table-1 calibrated) latency model.
    pub fn new() -> Self {
        NoCacheBaseline { latency: LatencyModel::default(), metrics: SystemMetrics::default() }
    }

    /// Handle a request: always a bent-pipe fetch.
    pub fn handle_request(&mut self, size: u64, gsl_oneway_ms: f64) -> f64 {
        let latency = self.latency.starlink_no_cache_rtt_ms(gsl_oneway_ms);
        self.metrics.record(
            SatelliteId::new(u16::MAX, u16::MAX),
            ServedFrom::Ground,
            size,
            latency,
        );
        latency
    }
}

impl Default for NoCacheBaseline {
    fn default() -> Self {
        Self::new()
    }
}

/// The terrestrial-CDN reference curve of Fig. 10 (terrestrial users,
/// no satellites involved): a latency distribution around the paper's
/// ~20 ms median, sampled deterministically.
pub struct TerrestrialCdnBaseline {
    latency: LatencyModel,
    counter: u64,
    /// Latency samples only (no cache semantics).
    pub metrics: SystemMetrics,
}

impl TerrestrialCdnBaseline {
    /// Build with the default latency model.
    pub fn new() -> Self {
        TerrestrialCdnBaseline {
            latency: LatencyModel::default(),
            counter: 0,
            metrics: SystemMetrics::default(),
        }
    }

    /// Record one request's latency sample.
    pub fn handle_request(&mut self, size: u64) -> f64 {
        // Low-discrepancy uniform sequence (golden-ratio stride) for a
        // smooth, deterministic CDF.
        self.counter += 1;
        let u = (self.counter as f64 * 0.618_033_988_749_894_8).fract();
        let latency = self.latency.terrestrial_cdn_rtt_ms(u);
        self.metrics.record(SatelliteId::new(u16::MAX, 0), ServedFrom::LocalHit, size, latency);
        latency
    }
}

impl Default for TerrestrialCdnBaseline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_cache_per_location_isolation() {
        let mut b = StaticCacheBaseline::new(3, 1000, PolicyKind::Lru);
        let (f1, _) = b.handle_request(0, ObjectId(1), 100, 2.0);
        assert_eq!(f1, ServedFrom::Ground);
        let (f2, _) = b.handle_request(0, ObjectId(1), 100, 2.0);
        assert_eq!(f2, ServedFrom::LocalHit);
        // Another location does not share the cache.
        let (f3, _) = b.handle_request(1, ObjectId(1), 100, 2.0);
        assert_eq!(f3, ServedFrom::Ground);
        assert_eq!(b.metrics.stats.requests, 3);
        assert_eq!(b.metrics.uplink_bytes, 200);
    }

    #[test]
    fn static_cache_hit_latency_is_gsl_only() {
        let mut b = StaticCacheBaseline::new(1, 1000, PolicyKind::Lru);
        b.handle_request(0, ObjectId(1), 100, 2.5);
        let (_, lat) = b.handle_request(0, ObjectId(1), 100, 2.5);
        assert!((lat - 5.0).abs() < 1e-9);
    }

    #[test]
    fn no_cache_charges_every_byte() {
        let mut b = NoCacheBaseline::new();
        let l1 = b.handle_request(100, 2.9);
        let l2 = b.handle_request(200, 2.9);
        assert!((l1 - l2).abs() < 1e-9, "latency independent of size");
        assert!((l1 - 55.0).abs() < 3.0, "no-cache median ≈ 55 ms, got {l1}");
        assert_eq!(b.metrics.uplink_bytes, 300);
        assert!((b.metrics.uplink_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(b.metrics.stats.request_hit_rate(), 0.0);
    }

    #[test]
    fn terrestrial_cdn_median_near_20ms() {
        let mut b = TerrestrialCdnBaseline::new();
        for _ in 0..10_001 {
            b.handle_request(100);
        }
        let med = b.metrics.latency_cdf().median().unwrap();
        assert!((med - 20.0).abs() < 3.0, "terrestrial median {med}");
        // Deterministic across runs.
        let mut b2 = TerrestrialCdnBaseline::new();
        for _ in 0..10_001 {
            b2.handle_request(100);
        }
        assert_eq!(b.metrics.latencies_ms, b2.metrics.latencies_ms);
    }
}
