//! StarCDN — a space-based content delivery network (SIGCOMM '25).
//!
//! StarCDN deploys CDN edge caches on LEO satellites and solves the two
//! problems orbital motion creates for caching:
//!
//! * **multi-satellite redundancy** — a user sees 10+ satellites whose
//!   set changes every few minutes, so naive per-satellite caches store
//!   the same content many times. StarCDN partitions content into `L`
//!   hash buckets tiled √L×√L over the ISL grid
//!   ([`starcdn_constellation::buckets`]) and routes every request to
//!   the nearest bucket owner (≤ `2⌊√L/2⌋` hops);
//! * **orbital motion** — a satellite's audience changes continents
//!   within minutes, going stale faster than an LRU cache can adapt.
//!   On a miss, the bucket owner *relay-fetches* from its same-bucket
//!   inter-orbit neighbours ([`relay`]), making cached content flow
//!   opposite to the orbital motion.
//!
//! The crate provides the full system ([`system::SpaceCdn`]), its
//! ablations and baselines ([`variants`], [`baselines`]), the
//! propagation-delay latency model ([`latency`]), and metrics
//! ([`metrics`]).
//!
//! ```
//! use starcdn::config::{RelayPolicy, StarCdnConfig};
//! use starcdn::system::SpaceCdn;
//! use starcdn_cache::object::ObjectId;
//! use starcdn_orbit::walker::SatelliteId;
//!
//! let cfg = StarCdnConfig::starcdn(4, 1 << 20); // L = 4, 1 MiB per satellite
//! let mut cdn = SpaceCdn::new(cfg);
//! let outcome = cdn.handle_request(SatelliteId::new(10, 7), ObjectId(42), 1000, 2.9);
//! assert!(outcome.latency_ms > 0.0);
//! ```

pub mod baselines;
pub mod config;
pub mod latency;
pub mod metrics;
pub mod relay;
pub mod system;
pub mod variants;

pub use config::{RelayPolicy, StarCdnConfig};
pub use metrics::{AvailabilityPoint, RecoverySlo, SystemMetrics};
pub use system::{
    resolve_route_in, ResolvedRoute, RouteOutcome, ServeOutcome, ServedFrom, SpaceCdn,
};
