//! System-level metrics: hit rates, uplink usage, latency samples,
//! serve-source breakdown, per-satellite statistics, and the Table-3
//! neighbour-availability monitor.

use crate::latency::LatencyCdf;
use crate::system::ServedFrom;
use serde::{Deserialize, Serialize};
use starcdn_cache::policy::AccessOutcome;
use starcdn_cache::stats::CacheStats;
use starcdn_orbit::walker::SatelliteId;
use std::collections::HashMap;

/// Table-3 counters: on a miss at the bucket owner, was the object
/// available in the west / east / both same-bucket neighbours?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborAvailability {
    pub west_only_requests: u64,
    pub west_only_bytes: u64,
    pub east_only_requests: u64,
    pub east_only_bytes: u64,
    pub both_requests: u64,
    pub both_bytes: u64,
    pub neither_requests: u64,
    pub neither_bytes: u64,
}

impl NeighborAvailability {
    /// Record one miss probe.
    pub fn record(&mut self, west: bool, east: bool, bytes: u64) {
        match (west, east) {
            (true, false) => {
                self.west_only_requests += 1;
                self.west_only_bytes += bytes;
            }
            (false, true) => {
                self.east_only_requests += 1;
                self.east_only_bytes += bytes;
            }
            (true, true) => {
                self.both_requests += 1;
                self.both_bytes += bytes;
            }
            (false, false) => {
                self.neither_requests += 1;
                self.neither_bytes += bytes;
            }
        }
    }

    /// Total probed misses.
    pub fn total_misses(&self) -> u64 {
        self.west_only_requests
            + self.east_only_requests
            + self.both_requests
            + self.neither_requests
    }
}

/// One sample of the per-epoch availability timeline recorded under a
/// fault schedule: how much of the constellation was in service when the
/// scheduler epoch began.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityPoint {
    /// Scheduler epoch index.
    pub epoch: u64,
    /// Satellites in service at the start of the epoch.
    pub alive_sats: u32,
    /// Individually cut ISLs (dead-incident links not included).
    pub cut_links: u32,
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// System-wide hit statistics: a "hit" is any request served from
    /// space (owner cache or relayed neighbour).
    pub stats: CacheStats,
    /// Bytes uploaded from ground to space (= miss bytes).
    pub uplink_bytes: u64,
    /// Per-source serve counts.
    pub served_local: u64,
    pub served_relay_west: u64,
    pub served_relay_east: u64,
    pub served_ground: u64,
    /// Bytes copied between satellites by relayed fetch (ISL traffic).
    #[serde(default)]
    pub relay_bytes: u64,
    /// Bytes copied between satellites by proactive prefetch (ISL
    /// traffic; the §3.3 rejected-alternative ablation).
    #[serde(default)]
    pub prefetch_bytes: u64,
    /// Objects copied by proactive prefetch.
    #[serde(default)]
    pub prefetch_copies: u64,
    /// Raw latency samples, ms.
    pub latencies_ms: Vec<f64>,
    /// Per-owner-satellite hit statistics (Fig. 11 grouping).
    pub per_satellite: HashMap<SatelliteId, CacheStats>,
    /// Table-3 monitor (populated when `probe_neighbors_on_miss` is on).
    pub neighbor_availability: NeighborAvailability,
    /// Requests whose preferred bucket owner was dead and that were
    /// served by the §3.4 remap target instead.
    #[serde(default)]
    pub remapped_requests: u64,
    /// Misses charged to a recovered satellite that had not yet re-warmed
    /// (first accesses after a cold restart).
    #[serde(default)]
    pub cold_restart_misses: u64,
    /// Extra ISL hops paid because BFS had to route around dead
    /// satellites or cut links (vs. the healthy-torus hop distance).
    #[serde(default)]
    pub reroute_extra_hops: u64,
    /// Per-epoch constellation availability under a fault schedule
    /// (empty for static-failure runs).
    #[serde(default)]
    pub availability: Vec<AvailabilityPoint>,
    /// Admission refusals by the capacity ledger (each retry attempt
    /// that was shed counts once; empty unless overload mode is on).
    #[serde(default)]
    pub shed_requests: u64,
    /// Retry attempts made beyond the first (replica probes + backoff
    /// re-admissions).
    #[serde(default)]
    pub retry_attempts: u64,
    /// Terminal outcome classification under overload mode. A request
    /// ends in exactly one of these four (unreachable requests — no
    /// visible satellite at all — stay outside the classification, as
    /// they never enter the constellation).
    #[serde(default)]
    pub served_primary: u64,
    #[serde(default)]
    pub served_replica: u64,
    #[serde(default)]
    pub served_origin_fallback: u64,
    #[serde(default)]
    pub dropped_requests: u64,
    /// Per-epoch link-utilization timeline from the capacity ledger
    /// (empty unless overload mode is on).
    #[serde(default)]
    pub utilization: Vec<starcdn_constellation::capacity::UtilizationPoint>,
    /// Requests whose owner resolved to a live satellite that was
    /// unreachable across a partitioned grid; each was served degraded
    /// over the origin bent pipe instead.
    #[serde(default)]
    pub partitioned_requests: u64,
    /// Requests that found an origin fetch already in flight for their
    /// object and coalesced onto it (delayed hits; zero unless the
    /// delayed-hit model is enabled).
    #[serde(default)]
    pub delayed_hits: u64,
    /// Followers aboard origin fetches that completed and retired.
    #[serde(default)]
    pub coalesced_requests: u64,
    /// Histogram of residual fetch wait charged to delayed hits,
    /// keyed by residual epochs (1..=fetch_epochs).
    #[serde(default)]
    pub residual_epoch_hist: std::collections::BTreeMap<u64, u64>,
}

/// Recovery-SLO summary of one availability dip episode, derived from
/// the [`AvailabilityPoint`] timeline: how deep the constellation sank
/// and how long it took to start and to finish recovering. Epoch times
/// are scheduler epoch indices (`u64::MAX` when the run ended before
/// the milestone was reached).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySlo {
    /// Alive satellites immediately before the dip began.
    pub baseline_alive: u32,
    /// Minimum alive satellites during the dip.
    pub trough_alive: u32,
    /// `baseline_alive - trough_alive`.
    pub dip_depth: u32,
    /// First epoch with fewer alive satellites than the baseline.
    pub dip_start_epoch: u64,
    /// Epoch of the trough (first epoch attaining the minimum).
    pub trough_epoch: u64,
    /// First epoch after the trough where availability rose at all
    /// (`u64::MAX` if it never did).
    pub first_recovery_epoch: u64,
    /// First epoch at or after the trough back at the baseline
    /// (`u64::MAX` if the run ended still degraded).
    pub full_recovery_epoch: u64,
}

impl RecoverySlo {
    /// Epochs from the trough to the first upward movement.
    pub fn time_to_first_recovery(&self) -> Option<u64> {
        (self.first_recovery_epoch != u64::MAX)
            .then(|| self.first_recovery_epoch - self.trough_epoch)
    }

    /// Epochs from the dip start back to the baseline.
    pub fn time_to_full_recovery(&self) -> Option<u64> {
        (self.full_recovery_epoch != u64::MAX)
            .then(|| self.full_recovery_epoch - self.dip_start_epoch)
    }
}

impl SystemMetrics {
    /// Record one served request.
    pub fn record(&mut self, owner: SatelliteId, from: ServedFrom, size: u64, latency_ms: f64) {
        let outcome = if from.is_space_hit() { AccessOutcome::Hit } else { AccessOutcome::Miss };
        self.stats.record(outcome, size);
        self.per_satellite.entry(owner).or_default().record(outcome, size);
        self.latencies_ms.push(latency_ms);
        match from {
            ServedFrom::LocalHit => self.served_local += 1,
            ServedFrom::RelayWest => {
                self.served_relay_west += 1;
                self.relay_bytes += size;
            }
            ServedFrom::RelayEast => {
                self.served_relay_east += 1;
                self.relay_bytes += size;
            }
            ServedFrom::Ground => {
                self.served_ground += 1;
                self.uplink_bytes += size;
            }
        }
    }

    /// Uplink bandwidth normalized to serving everything from ground
    /// (the Fig. 8 metric; 1.0 = no cache at all).
    pub fn uplink_fraction(&self) -> f64 {
        if self.stats.bytes_requested == 0 {
            0.0
        } else {
            self.uplink_bytes as f64 / self.stats.bytes_requested as f64
        }
    }

    /// Latency CDF over all recorded samples.
    pub fn latency_cdf(&self) -> LatencyCdf {
        LatencyCdf::from_samples(self.latencies_ms.clone())
    }

    /// Recovery-SLO episodes derived from the availability timeline: one
    /// entry per contiguous dip below the preceding baseline. Pure
    /// derivation — nothing extra is stored, so engine↔replayer parity
    /// of the timeline carries over to the SLOs.
    pub fn recovery_slos(&self) -> Vec<RecoverySlo> {
        let pts = &self.availability;
        let mut out = Vec::new();
        let mut i = 1;
        while i < pts.len() {
            if pts[i].alive_sats >= pts[i - 1].alive_sats {
                i += 1;
                continue;
            }
            // Dip begins at `i`; baseline is the point just before.
            let baseline = pts[i - 1].alive_sats;
            let dip_start = pts[i].epoch;
            let mut trough = pts[i];
            let mut j = i;
            // The dip runs until availability is back at the baseline.
            while j < pts.len() && pts[j].alive_sats < baseline {
                if pts[j].alive_sats < trough.alive_sats {
                    trough = pts[j];
                }
                j += 1;
            }
            let first_recovery = pts[i..j]
                .iter()
                .find(|p| p.epoch > trough.epoch && p.alive_sats > trough.alive_sats)
                .map(|p| p.epoch)
                .unwrap_or(if j < pts.len() { pts[j].epoch } else { u64::MAX });
            let full_recovery = if j < pts.len() { pts[j].epoch } else { u64::MAX };
            out.push(RecoverySlo {
                baseline_alive: baseline,
                trough_alive: trough.alive_sats,
                dip_depth: baseline - trough.alive_sats,
                dip_start_epoch: dip_start,
                trough_epoch: trough.epoch,
                first_recovery_epoch: first_recovery,
                full_recovery_epoch: full_recovery,
            });
            i = j.max(i + 1);
        }
        out
    }

    /// Merge another run's metrics into this one.
    pub fn merge(&mut self, other: &SystemMetrics) {
        self.stats += other.stats;
        self.uplink_bytes += other.uplink_bytes;
        self.served_local += other.served_local;
        self.served_relay_west += other.served_relay_west;
        self.served_relay_east += other.served_relay_east;
        self.served_ground += other.served_ground;
        self.relay_bytes += other.relay_bytes;
        self.prefetch_bytes += other.prefetch_bytes;
        self.prefetch_copies += other.prefetch_copies;
        self.latencies_ms.extend_from_slice(&other.latencies_ms);
        self.remapped_requests += other.remapped_requests;
        self.cold_restart_misses += other.cold_restart_misses;
        self.reroute_extra_hops += other.reroute_extra_hops;
        self.availability.extend_from_slice(&other.availability);
        self.availability.sort_by_key(|p| p.epoch);
        self.availability.dedup_by_key(|p| p.epoch);
        self.shed_requests += other.shed_requests;
        self.retry_attempts += other.retry_attempts;
        self.served_primary += other.served_primary;
        self.served_replica += other.served_replica;
        self.served_origin_fallback += other.served_origin_fallback;
        self.dropped_requests += other.dropped_requests;
        self.utilization.extend_from_slice(&other.utilization);
        self.utilization.sort_by_key(|a| a.epoch);
        self.utilization.dedup_by_key(|p| p.epoch);
        self.partitioned_requests += other.partitioned_requests;
        self.delayed_hits += other.delayed_hits;
        self.coalesced_requests += other.coalesced_requests;
        for (&residual, &count) in &other.residual_epoch_hist {
            *self.residual_epoch_hist.entry(residual).or_insert(0) += count;
        }
        for (sat, st) in &other.per_satellite {
            *self.per_satellite.entry(*sat).or_default() += *st;
        }
        let n = &mut self.neighbor_availability;
        let o = &other.neighbor_availability;
        n.west_only_requests += o.west_only_requests;
        n.west_only_bytes += o.west_only_bytes;
        n.east_only_requests += o.east_only_requests;
        n.east_only_bytes += o.east_only_bytes;
        n.both_requests += o.both_requests;
        n.both_bytes += o.both_bytes;
        n.neither_requests += o.neither_requests;
        n.neither_bytes += o.neither_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_sources() {
        let mut m = SystemMetrics::default();
        let sat = SatelliteId::new(1, 1);
        m.record(sat, ServedFrom::LocalHit, 100, 10.0);
        m.record(sat, ServedFrom::RelayWest, 100, 20.0);
        m.record(sat, ServedFrom::RelayEast, 100, 20.0);
        m.record(sat, ServedFrom::Ground, 100, 70.0);
        assert_eq!(m.served_local, 1);
        assert_eq!(m.served_relay_west, 1);
        assert_eq!(m.served_relay_east, 1);
        assert_eq!(m.served_ground, 1);
        assert_eq!(m.relay_bytes, 200, "both relay hits move bytes over ISLs");
        // Relay hits count as space hits.
        assert!((m.stats.request_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(m.uplink_bytes, 100);
        assert!((m.uplink_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(m.per_satellite[&sat].requests, 4);
    }

    #[test]
    fn empty_metrics() {
        let m = SystemMetrics::default();
        assert_eq!(m.uplink_fraction(), 0.0);
        assert!(m.latency_cdf().is_empty());
    }

    #[test]
    fn neighbor_availability_cells() {
        let mut n = NeighborAvailability::default();
        n.record(true, false, 10);
        n.record(false, true, 20);
        n.record(true, true, 30);
        n.record(false, false, 40);
        assert_eq!(n.west_only_requests, 1);
        assert_eq!(n.west_only_bytes, 10);
        assert_eq!(n.east_only_bytes, 20);
        assert_eq!(n.both_bytes, 30);
        assert_eq!(n.neither_bytes, 40);
        assert_eq!(n.total_misses(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let sat = SatelliteId::new(0, 0);
        let mut a = SystemMetrics::default();
        a.record(sat, ServedFrom::LocalHit, 10, 5.0);
        let mut b = SystemMetrics::default();
        b.record(sat, ServedFrom::Ground, 30, 60.0);
        b.neighbor_availability.record(true, true, 30);
        a.merge(&b);
        assert_eq!(a.stats.requests, 2);
        assert_eq!(a.uplink_bytes, 30);
        assert_eq!(a.latencies_ms.len(), 2);
        assert_eq!(a.per_satellite[&sat].requests, 2);
        assert_eq!(a.neighbor_availability.both_requests, 1);
    }

    #[test]
    fn merge_degraded_mode_counters() {
        let mut a =
            SystemMetrics { remapped_requests: 3, cold_restart_misses: 1, ..Default::default() };
        a.availability.push(AvailabilityPoint { epoch: 0, alive_sats: 1296, cut_links: 0 });
        let mut b =
            SystemMetrics { remapped_requests: 2, reroute_extra_hops: 7, ..Default::default() };
        // Duplicate epoch 0 (parallel shards each see the boundary) plus a
        // new epoch 1 — merge dedups by epoch.
        b.availability.push(AvailabilityPoint { epoch: 0, alive_sats: 1296, cut_links: 0 });
        b.availability.push(AvailabilityPoint { epoch: 1, alive_sats: 1290, cut_links: 4 });
        a.merge(&b);
        assert_eq!(a.remapped_requests, 5);
        assert_eq!(a.cold_restart_misses, 1);
        assert_eq!(a.reroute_extra_hops, 7);
        assert_eq!(a.availability.len(), 2);
        assert_eq!(a.availability[1].alive_sats, 1290);
    }

    #[test]
    fn merge_overload_counters_and_utilization() {
        use starcdn_constellation::capacity::UtilizationPoint;
        let point = |epoch: u64, util: f64| UtilizationPoint {
            epoch,
            peak_gsl_util: util,
            peak_isl_util: 0.0,
            gsl_bytes: 0,
            isl_bytes: 0,
            shed_requests: 0,
        };
        let mut a = SystemMetrics { shed_requests: 2, served_primary: 5, ..Default::default() };
        a.utilization.push(point(0, 0.5));
        let mut b = SystemMetrics {
            shed_requests: 1,
            retry_attempts: 4,
            served_replica: 2,
            served_origin_fallback: 1,
            dropped_requests: 1,
            ..Default::default()
        };
        b.utilization.push(point(0, 0.5)); // duplicate epoch → deduped
        b.utilization.push(point(1, 0.9));
        a.merge(&b);
        assert_eq!(a.shed_requests, 3);
        assert_eq!(a.retry_attempts, 4);
        assert_eq!(a.served_primary, 5);
        assert_eq!(a.served_replica, 2);
        assert_eq!(a.served_origin_fallback, 1);
        assert_eq!(a.dropped_requests, 1);
        assert_eq!(a.utilization.len(), 2);
        assert_eq!(a.utilization[1].epoch, 1);
    }

    fn avail(epoch: u64, alive: u32) -> AvailabilityPoint {
        AvailabilityPoint { epoch, alive_sats: alive, cut_links: 0 }
    }

    #[test]
    fn recovery_slos_empty_without_dips() {
        let mut m = SystemMetrics::default();
        assert!(m.recovery_slos().is_empty());
        m.availability = vec![avail(0, 1296), avail(1, 1296), avail(2, 1296)];
        assert!(m.recovery_slos().is_empty(), "flat availability has no episodes");
    }

    #[test]
    fn recovery_slos_one_storm_episode() {
        // Baseline 1296, storm drops to 1200 then 1150, staged recovery
        // via 1210 back to 1296.
        let m = SystemMetrics {
            availability: vec![
                avail(0, 1296),
                avail(1, 1200),
                avail(2, 1150),
                avail(3, 1150),
                avail(4, 1210),
                avail(5, 1296),
                avail(6, 1296),
            ],
            ..Default::default()
        };
        let slos = m.recovery_slos();
        assert_eq!(slos.len(), 1);
        let s = slos[0];
        assert_eq!(s.baseline_alive, 1296);
        assert_eq!(s.trough_alive, 1150);
        assert_eq!(s.dip_depth, 146);
        assert_eq!(s.dip_start_epoch, 1);
        assert_eq!(s.trough_epoch, 2);
        assert_eq!(s.first_recovery_epoch, 4);
        assert_eq!(s.full_recovery_epoch, 5);
        assert_eq!(s.time_to_first_recovery(), Some(2));
        assert_eq!(s.time_to_full_recovery(), Some(4));
    }

    #[test]
    fn recovery_slos_unrecovered_dip_and_two_episodes() {
        let m = SystemMetrics {
            availability: vec![
                avail(0, 100),
                avail(1, 90), // episode 1: dips, recovers at 3
                avail(2, 95),
                avail(3, 100),
                avail(4, 80), // episode 2: never recovers
                avail(5, 80),
            ],
            ..Default::default()
        };
        let slos = m.recovery_slos();
        assert_eq!(slos.len(), 2);
        assert_eq!(slos[0].dip_depth, 10);
        assert_eq!(slos[0].full_recovery_epoch, 3);
        assert_eq!(slos[1].dip_depth, 20);
        assert_eq!(slos[1].first_recovery_epoch, u64::MAX);
        assert_eq!(slos[1].full_recovery_epoch, u64::MAX);
        assert_eq!(slos[1].time_to_first_recovery(), None);
        assert_eq!(slos[1].time_to_full_recovery(), None);
    }

    #[test]
    fn merge_delayed_hit_counters() {
        let mut a = SystemMetrics { delayed_hits: 2, coalesced_requests: 1, ..Default::default() };
        a.residual_epoch_hist.insert(1, 1);
        a.residual_epoch_hist.insert(2, 1);
        let mut b = SystemMetrics { delayed_hits: 3, coalesced_requests: 4, ..Default::default() };
        b.residual_epoch_hist.insert(2, 2);
        b.residual_epoch_hist.insert(5, 1);
        a.merge(&b);
        assert_eq!(a.delayed_hits, 5);
        assert_eq!(a.coalesced_requests, 5);
        assert_eq!(a.residual_epoch_hist[&1], 1);
        assert_eq!(a.residual_epoch_hist[&2], 3);
        assert_eq!(a.residual_epoch_hist[&5], 1);
    }

    #[test]
    fn merge_partitioned_requests() {
        let mut a = SystemMetrics { partitioned_requests: 2, ..Default::default() };
        let b = SystemMetrics { partitioned_requests: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.partitioned_requests, 5);
    }

    #[test]
    fn latency_cdf_from_metrics() {
        let mut m = SystemMetrics::default();
        let sat = SatelliteId::new(0, 0);
        for (i, lat) in [10.0, 30.0, 20.0].into_iter().enumerate() {
            m.record(sat, ServedFrom::LocalHit, i as u64 + 1, lat);
        }
        assert_eq!(m.latency_cdf().median(), Some(20.0));
    }
}
