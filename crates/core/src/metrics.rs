//! System-level metrics: hit rates, uplink usage, latency samples,
//! serve-source breakdown, per-satellite statistics, and the Table-3
//! neighbour-availability monitor.

use crate::latency::LatencyCdf;
use crate::system::ServedFrom;
use serde::{Deserialize, Serialize};
use starcdn_cache::policy::AccessOutcome;
use starcdn_cache::stats::CacheStats;
use starcdn_orbit::walker::SatelliteId;
use std::collections::HashMap;

/// Table-3 counters: on a miss at the bucket owner, was the object
/// available in the west / east / both same-bucket neighbours?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborAvailability {
    pub west_only_requests: u64,
    pub west_only_bytes: u64,
    pub east_only_requests: u64,
    pub east_only_bytes: u64,
    pub both_requests: u64,
    pub both_bytes: u64,
    pub neither_requests: u64,
    pub neither_bytes: u64,
}

impl NeighborAvailability {
    /// Record one miss probe.
    pub fn record(&mut self, west: bool, east: bool, bytes: u64) {
        match (west, east) {
            (true, false) => {
                self.west_only_requests += 1;
                self.west_only_bytes += bytes;
            }
            (false, true) => {
                self.east_only_requests += 1;
                self.east_only_bytes += bytes;
            }
            (true, true) => {
                self.both_requests += 1;
                self.both_bytes += bytes;
            }
            (false, false) => {
                self.neither_requests += 1;
                self.neither_bytes += bytes;
            }
        }
    }

    /// Total probed misses.
    pub fn total_misses(&self) -> u64 {
        self.west_only_requests
            + self.east_only_requests
            + self.both_requests
            + self.neither_requests
    }
}

/// One sample of the per-epoch availability timeline recorded under a
/// fault schedule: how much of the constellation was in service when the
/// scheduler epoch began.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityPoint {
    /// Scheduler epoch index.
    pub epoch: u64,
    /// Satellites in service at the start of the epoch.
    pub alive_sats: u32,
    /// Individually cut ISLs (dead-incident links not included).
    pub cut_links: u32,
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// System-wide hit statistics: a "hit" is any request served from
    /// space (owner cache or relayed neighbour).
    pub stats: CacheStats,
    /// Bytes uploaded from ground to space (= miss bytes).
    pub uplink_bytes: u64,
    /// Per-source serve counts.
    pub served_local: u64,
    pub served_relay_west: u64,
    pub served_relay_east: u64,
    pub served_ground: u64,
    /// Bytes copied between satellites by relayed fetch (ISL traffic).
    #[serde(default)]
    pub relay_bytes: u64,
    /// Bytes copied between satellites by proactive prefetch (ISL
    /// traffic; the §3.3 rejected-alternative ablation).
    #[serde(default)]
    pub prefetch_bytes: u64,
    /// Objects copied by proactive prefetch.
    #[serde(default)]
    pub prefetch_copies: u64,
    /// Raw latency samples, ms.
    pub latencies_ms: Vec<f64>,
    /// Per-owner-satellite hit statistics (Fig. 11 grouping).
    pub per_satellite: HashMap<SatelliteId, CacheStats>,
    /// Table-3 monitor (populated when `probe_neighbors_on_miss` is on).
    pub neighbor_availability: NeighborAvailability,
    /// Requests whose preferred bucket owner was dead and that were
    /// served by the §3.4 remap target instead.
    #[serde(default)]
    pub remapped_requests: u64,
    /// Misses charged to a recovered satellite that had not yet re-warmed
    /// (first accesses after a cold restart).
    #[serde(default)]
    pub cold_restart_misses: u64,
    /// Extra ISL hops paid because BFS had to route around dead
    /// satellites or cut links (vs. the healthy-torus hop distance).
    #[serde(default)]
    pub reroute_extra_hops: u64,
    /// Per-epoch constellation availability under a fault schedule
    /// (empty for static-failure runs).
    #[serde(default)]
    pub availability: Vec<AvailabilityPoint>,
    /// Admission refusals by the capacity ledger (each retry attempt
    /// that was shed counts once; empty unless overload mode is on).
    #[serde(default)]
    pub shed_requests: u64,
    /// Retry attempts made beyond the first (replica probes + backoff
    /// re-admissions).
    #[serde(default)]
    pub retry_attempts: u64,
    /// Terminal outcome classification under overload mode. A request
    /// ends in exactly one of these four (unreachable requests — no
    /// visible satellite at all — stay outside the classification, as
    /// they never enter the constellation).
    #[serde(default)]
    pub served_primary: u64,
    #[serde(default)]
    pub served_replica: u64,
    #[serde(default)]
    pub served_origin_fallback: u64,
    #[serde(default)]
    pub dropped_requests: u64,
    /// Per-epoch link-utilization timeline from the capacity ledger
    /// (empty unless overload mode is on).
    #[serde(default)]
    pub utilization: Vec<starcdn_constellation::capacity::UtilizationPoint>,
}

impl SystemMetrics {
    /// Record one served request.
    pub fn record(&mut self, owner: SatelliteId, from: ServedFrom, size: u64, latency_ms: f64) {
        let outcome = if from.is_space_hit() { AccessOutcome::Hit } else { AccessOutcome::Miss };
        self.stats.record(outcome, size);
        self.per_satellite.entry(owner).or_default().record(outcome, size);
        self.latencies_ms.push(latency_ms);
        match from {
            ServedFrom::LocalHit => self.served_local += 1,
            ServedFrom::RelayWest => {
                self.served_relay_west += 1;
                self.relay_bytes += size;
            }
            ServedFrom::RelayEast => {
                self.served_relay_east += 1;
                self.relay_bytes += size;
            }
            ServedFrom::Ground => {
                self.served_ground += 1;
                self.uplink_bytes += size;
            }
        }
    }

    /// Uplink bandwidth normalized to serving everything from ground
    /// (the Fig. 8 metric; 1.0 = no cache at all).
    pub fn uplink_fraction(&self) -> f64 {
        if self.stats.bytes_requested == 0 {
            0.0
        } else {
            self.uplink_bytes as f64 / self.stats.bytes_requested as f64
        }
    }

    /// Latency CDF over all recorded samples.
    pub fn latency_cdf(&self) -> LatencyCdf {
        LatencyCdf::from_samples(self.latencies_ms.clone())
    }

    /// Merge another run's metrics into this one.
    pub fn merge(&mut self, other: &SystemMetrics) {
        self.stats += other.stats;
        self.uplink_bytes += other.uplink_bytes;
        self.served_local += other.served_local;
        self.served_relay_west += other.served_relay_west;
        self.served_relay_east += other.served_relay_east;
        self.served_ground += other.served_ground;
        self.relay_bytes += other.relay_bytes;
        self.prefetch_bytes += other.prefetch_bytes;
        self.prefetch_copies += other.prefetch_copies;
        self.latencies_ms.extend_from_slice(&other.latencies_ms);
        self.remapped_requests += other.remapped_requests;
        self.cold_restart_misses += other.cold_restart_misses;
        self.reroute_extra_hops += other.reroute_extra_hops;
        self.availability.extend_from_slice(&other.availability);
        self.availability.sort_by_key(|p| p.epoch);
        self.availability.dedup_by_key(|p| p.epoch);
        self.shed_requests += other.shed_requests;
        self.retry_attempts += other.retry_attempts;
        self.served_primary += other.served_primary;
        self.served_replica += other.served_replica;
        self.served_origin_fallback += other.served_origin_fallback;
        self.dropped_requests += other.dropped_requests;
        self.utilization.extend_from_slice(&other.utilization);
        self.utilization.sort_by_key(|a| a.epoch);
        self.utilization.dedup_by_key(|p| p.epoch);
        for (sat, st) in &other.per_satellite {
            *self.per_satellite.entry(*sat).or_default() += *st;
        }
        let n = &mut self.neighbor_availability;
        let o = &other.neighbor_availability;
        n.west_only_requests += o.west_only_requests;
        n.west_only_bytes += o.west_only_bytes;
        n.east_only_requests += o.east_only_requests;
        n.east_only_bytes += o.east_only_bytes;
        n.both_requests += o.both_requests;
        n.both_bytes += o.both_bytes;
        n.neither_requests += o.neither_requests;
        n.neither_bytes += o.neither_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_sources() {
        let mut m = SystemMetrics::default();
        let sat = SatelliteId::new(1, 1);
        m.record(sat, ServedFrom::LocalHit, 100, 10.0);
        m.record(sat, ServedFrom::RelayWest, 100, 20.0);
        m.record(sat, ServedFrom::RelayEast, 100, 20.0);
        m.record(sat, ServedFrom::Ground, 100, 70.0);
        assert_eq!(m.served_local, 1);
        assert_eq!(m.served_relay_west, 1);
        assert_eq!(m.served_relay_east, 1);
        assert_eq!(m.served_ground, 1);
        assert_eq!(m.relay_bytes, 200, "both relay hits move bytes over ISLs");
        // Relay hits count as space hits.
        assert!((m.stats.request_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(m.uplink_bytes, 100);
        assert!((m.uplink_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(m.per_satellite[&sat].requests, 4);
    }

    #[test]
    fn empty_metrics() {
        let m = SystemMetrics::default();
        assert_eq!(m.uplink_fraction(), 0.0);
        assert!(m.latency_cdf().is_empty());
    }

    #[test]
    fn neighbor_availability_cells() {
        let mut n = NeighborAvailability::default();
        n.record(true, false, 10);
        n.record(false, true, 20);
        n.record(true, true, 30);
        n.record(false, false, 40);
        assert_eq!(n.west_only_requests, 1);
        assert_eq!(n.west_only_bytes, 10);
        assert_eq!(n.east_only_bytes, 20);
        assert_eq!(n.both_bytes, 30);
        assert_eq!(n.neither_bytes, 40);
        assert_eq!(n.total_misses(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let sat = SatelliteId::new(0, 0);
        let mut a = SystemMetrics::default();
        a.record(sat, ServedFrom::LocalHit, 10, 5.0);
        let mut b = SystemMetrics::default();
        b.record(sat, ServedFrom::Ground, 30, 60.0);
        b.neighbor_availability.record(true, true, 30);
        a.merge(&b);
        assert_eq!(a.stats.requests, 2);
        assert_eq!(a.uplink_bytes, 30);
        assert_eq!(a.latencies_ms.len(), 2);
        assert_eq!(a.per_satellite[&sat].requests, 2);
        assert_eq!(a.neighbor_availability.both_requests, 1);
    }

    #[test]
    fn merge_degraded_mode_counters() {
        let mut a = SystemMetrics::default();
        a.remapped_requests = 3;
        a.cold_restart_misses = 1;
        a.availability.push(AvailabilityPoint { epoch: 0, alive_sats: 1296, cut_links: 0 });
        let mut b = SystemMetrics::default();
        b.remapped_requests = 2;
        b.reroute_extra_hops = 7;
        // Duplicate epoch 0 (parallel shards each see the boundary) plus a
        // new epoch 1 — merge dedups by epoch.
        b.availability.push(AvailabilityPoint { epoch: 0, alive_sats: 1296, cut_links: 0 });
        b.availability.push(AvailabilityPoint { epoch: 1, alive_sats: 1290, cut_links: 4 });
        a.merge(&b);
        assert_eq!(a.remapped_requests, 5);
        assert_eq!(a.cold_restart_misses, 1);
        assert_eq!(a.reroute_extra_hops, 7);
        assert_eq!(a.availability.len(), 2);
        assert_eq!(a.availability[1].alive_sats, 1290);
    }

    #[test]
    fn merge_overload_counters_and_utilization() {
        use starcdn_constellation::capacity::UtilizationPoint;
        let point = |epoch: u64, util: f64| UtilizationPoint {
            epoch,
            peak_gsl_util: util,
            peak_isl_util: 0.0,
            gsl_bytes: 0,
            isl_bytes: 0,
            shed_requests: 0,
        };
        let mut a = SystemMetrics::default();
        a.shed_requests = 2;
        a.served_primary = 5;
        a.utilization.push(point(0, 0.5));
        let mut b = SystemMetrics::default();
        b.shed_requests = 1;
        b.retry_attempts = 4;
        b.served_replica = 2;
        b.served_origin_fallback = 1;
        b.dropped_requests = 1;
        b.utilization.push(point(0, 0.5)); // duplicate epoch → deduped
        b.utilization.push(point(1, 0.9));
        a.merge(&b);
        assert_eq!(a.shed_requests, 3);
        assert_eq!(a.retry_attempts, 4);
        assert_eq!(a.served_primary, 5);
        assert_eq!(a.served_replica, 2);
        assert_eq!(a.served_origin_fallback, 1);
        assert_eq!(a.dropped_requests, 1);
        assert_eq!(a.utilization.len(), 2);
        assert_eq!(a.utilization[1].epoch, 1);
    }

    #[test]
    fn latency_cdf_from_metrics() {
        let mut m = SystemMetrics::default();
        let sat = SatelliteId::new(0, 0);
        for (i, lat) in [10.0, 30.0, 20.0].into_iter().enumerate() {
            m.record(sat, ServedFrom::LocalHit, i as u64 + 1, lat);
        }
        assert_eq!(m.latency_cdf().median(), Some(20.0));
    }
}
