//! The StarCDN system: request handling across the satellite fleet.
//!
//! [`SpaceCdn`] owns one cache per grid slot and implements the full
//! request pipeline of Fig. 5a:
//!
//! 1. the user's request arrives at its *first-contact* satellite
//!    (chosen by the link scheduler — outside StarCDN's control);
//! 2. with hashing enabled, the request is routed over ISLs to the
//!    nearest owner of the object's bucket (≤ `2⌊√L/2⌋` hops), after
//!    §3.4 failure remapping;
//! 3. the owner serves from cache, or relay-fetches from its same-bucket
//!    inter-orbit neighbours (§3.3), or downlinks to the ground origin —
//!    always caching what it fetched;
//! 4. latency is accounted leg by leg and uplink bytes are charged only
//!    for ground fetches.

use crate::config::StarCdnConfig;
use crate::latency::LatencyModel;
use crate::metrics::SystemMetrics;
use crate::relay::relay_candidates;
use serde::{Deserialize, Serialize};
use starcdn_cache::object::ObjectId;
use starcdn_cache::policy::{AccessOutcome, Cache};
use starcdn_cache::{InflightQueue, InflightState};
use starcdn_constellation::buckets::BucketTiling;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::grid::GridTopology;
use starcdn_constellation::routing::shortest_path_avoiding_links_recorded;
use starcdn_orbit::walker::SatelliteId;

/// Where a request was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedFrom {
    /// The bucket owner's own cache (or the first-contact satellite's,
    /// without hashing).
    LocalHit,
    /// The west same-bucket inter-orbit neighbour.
    RelayWest,
    /// The east same-bucket inter-orbit neighbour.
    RelayEast,
    /// Fetched from the origin via a ground-satellite link.
    Ground,
}

impl ServedFrom {
    /// True when the request never touched the ground.
    pub fn is_space_hit(self) -> bool {
        !matches!(self, ServedFrom::Ground)
    }
}

/// The result of handling one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOutcome {
    pub served_from: ServedFrom,
    /// End-to-end RTT, ms.
    pub latency_ms: f64,
    /// Bytes charged to the ground-to-satellite uplink.
    pub uplink_bytes: u64,
    /// The satellite that handled (and now caches) the object.
    pub owner: SatelliteId,
    /// ISL hops from the first-contact satellite to the owner (one way).
    pub route_hops: u16,
    /// Residual fetch wait charged to this request, in epochs. Nonzero
    /// exactly when the request was a delayed hit (coalesced onto an
    /// in-flight fetch); always 0 with the delayed-hit model off.
    pub residual_epochs: u64,
    /// An in-flight fetch for this object completed and retired
    /// (admitting the object) when this request arrived.
    pub fetch_retired: bool,
    /// Followers that were aboard the retired fetch.
    pub coalesced: u64,
}

/// The owner a request routes to, with the degraded-mode context the
/// metrics layer needs: whether §3.4 remapping redirected it and how many
/// extra ISL hops the fault-avoiding route cost over the healthy torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedRoute {
    /// The satellite that serves the request.
    pub owner: SatelliteId,
    /// One-way intra-orbit hops from the first contact.
    pub intra: u16,
    /// One-way inter-orbit hops from the first contact.
    pub inter: u16,
    /// True when the preferred bucket owner was dead and the request was
    /// remapped to the next available satellite.
    pub remapped: bool,
    /// Hops beyond the healthy-torus distance to the serving owner, paid
    /// to route around dead satellites or cut links.
    pub extra_hops: u16,
}

impl ResolvedRoute {
    /// Total one-way ISL hops.
    pub fn hops(&self) -> u16 {
        self.intra + self.inter
    }
}

/// How a route resolution ended: the explicit three-way split the
/// degraded-serving paths need. `Partitioned` (owner alive but
/// unreachable across a severed grid) and `Unroutable` (owner and every
/// remap candidate dead) both degrade to the origin bent-pipe path, but
/// are distinct failure modes with distinct counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// A live owner with a surviving route.
    Routed(ResolvedRoute),
    /// The owner resolved to a live satellite, but no surviving ISL path
    /// connects the first contact to it: they sit in different connected
    /// components of the damaged grid.
    Partitioned {
        /// The live-but-unreachable owner.
        owner: SatelliteId,
    },
    /// The preferred owner (and, with remapping, every candidate in its
    /// bucket chain) is dead.
    Unroutable,
}

impl RouteOutcome {
    /// The resolved route, dropping the degraded outcomes.
    pub fn routed(self) -> Option<ResolvedRoute> {
        match self {
            RouteOutcome::Routed(r) => Some(r),
            RouteOutcome::Partitioned { .. } | RouteOutcome::Unroutable => None,
        }
    }
}

/// [`resolve_route_in_recorded`] with the explicit three-way outcome.
#[allow(clippy::too_many_arguments)]
pub fn classify_route_in_recorded(
    grid: &GridTopology,
    tiling: Option<&BucketTiling>,
    failures: &FailureModel,
    remap_on_failure: bool,
    first_contact: SatelliteId,
    object: ObjectId,
    rec: &dyn starcdn_telemetry::Recorder,
) -> RouteOutcome {
    let preferred = preferred_owner(grid, tiling, first_contact, object);
    classify_route_toward_recorded(grid, failures, remap_on_failure, first_contact, preferred, rec)
}

/// Resolve the serving owner and route for `object` arriving at
/// `first_contact`, under an arbitrary failure view. Free function so the
/// parallel replayer's pre-pass can resolve against a churn cursor's view
/// without rebuilding a [`SpaceCdn`] (and its per-slot caches) per epoch.
pub fn resolve_route_in(
    grid: &GridTopology,
    tiling: Option<&BucketTiling>,
    failures: &FailureModel,
    remap_on_failure: bool,
    first_contact: SatelliteId,
    object: ObjectId,
) -> Option<ResolvedRoute> {
    resolve_route_in_recorded(
        grid,
        tiling,
        failures,
        remap_on_failure,
        first_contact,
        object,
        &starcdn_telemetry::Noop,
    )
}

/// [`resolve_route_in`] with telemetry: the fault-avoiding BFS fallback
/// reports route counts and detour hop lengths through `rec` (see
/// [`shortest_path_avoiding_links_recorded`]). The plain entry point
/// passes a no-op recorder.
#[allow(clippy::too_many_arguments)]
pub fn resolve_route_in_recorded(
    grid: &GridTopology,
    tiling: Option<&BucketTiling>,
    failures: &FailureModel,
    remap_on_failure: bool,
    first_contact: SatelliteId,
    object: ObjectId,
    rec: &dyn starcdn_telemetry::Recorder,
) -> Option<ResolvedRoute> {
    let preferred = preferred_owner(grid, tiling, first_contact, object);
    resolve_route_toward_recorded(grid, failures, remap_on_failure, first_contact, preferred, rec)
}

/// The owner `object` hashes to under the tiling (the first contact
/// itself without hashing), before any failure remapping.
pub fn preferred_owner(
    grid: &GridTopology,
    tiling: Option<&BucketTiling>,
    first_contact: SatelliteId,
    object: ObjectId,
) -> SatelliteId {
    match tiling {
        Some(t) => t.nearest_owner(grid, first_contact, t.bucket_of_object(object.hash64())),
        None => first_contact,
    }
}

/// Resolve the route toward an explicit `preferred` owner (rather than
/// the one the object hashes to): §3.4 remapping, then hop mix on the
/// healthy torus or the fault-avoiding BFS. The overload retry path uses
/// this to probe successive same-bucket replicas. `None` collapses both
/// degraded outcomes; use [`classify_route_toward_recorded`] to tell a
/// partition from a dead owner chain.
pub fn resolve_route_toward_recorded(
    grid: &GridTopology,
    failures: &FailureModel,
    remap_on_failure: bool,
    first_contact: SatelliteId,
    preferred: SatelliteId,
    rec: &dyn starcdn_telemetry::Recorder,
) -> Option<ResolvedRoute> {
    classify_route_toward_recorded(grid, failures, remap_on_failure, first_contact, preferred, rec)
        .routed()
}

/// [`resolve_route_toward_recorded`] with the explicit three-way
/// outcome: `Routed`, `Partitioned` (live owner, no surviving path — a
/// dead first contact counts, it is trivially disconnected), or
/// `Unroutable` (owner chain dead). Telemetry recording is identical to
/// the `Option` form — the BFS fallback runs exactly once either way.
pub fn classify_route_toward_recorded(
    grid: &GridTopology,
    failures: &FailureModel,
    remap_on_failure: bool,
    first_contact: SatelliteId,
    preferred: SatelliteId,
    rec: &dyn starcdn_telemetry::Recorder,
) -> RouteOutcome {
    let owner = if remap_on_failure {
        match failures.resolve_owner(grid, preferred) {
            Some(o) => o,
            None => return RouteOutcome::Unroutable,
        }
    } else if failures.is_alive(preferred) {
        preferred
    } else {
        // Transient failure response (§3.4): report a miss and forward
        // the request to the ground.
        return RouteOutcome::Unroutable;
    };
    let remapped = owner != preferred;
    if owner == first_contact {
        return RouteOutcome::Routed(ResolvedRoute {
            owner,
            intra: 0,
            inter: 0,
            remapped,
            extra_hops: 0,
        });
    }
    if !failures.has_faults() {
        // Healthy torus: the canonical path's hop mix is the wrap
        // distance on each axis.
        let inter = grid.plane_distance(first_contact.orbit, owner.orbit);
        let intra = grid.slot_distance(first_contact.slot, owner.slot);
        RouteOutcome::Routed(ResolvedRoute { owner, intra, inter, remapped, extra_hops: 0 })
    } else {
        let Some(path) = shortest_path_avoiding_links_recorded(
            grid,
            first_contact,
            owner,
            |id| failures.is_alive(id),
            |a, b| failures.is_link_alive(a, b),
            rec,
        ) else {
            // The owner is alive but BFS over the surviving grid found no
            // path: first contact and owner are in different components.
            return RouteOutcome::Partitioned { owner };
        };
        let (intra, inter) = path.hop_mix();
        let extra_hops =
            (path.len() as u16).saturating_sub(grid.hop_distance(first_contact, owner));
        RouteOutcome::Routed(ResolvedRoute {
            owner,
            intra: intra as u16,
            inter: inter as u16,
            remapped,
            extra_hops,
        })
    }
}

/// The satellite CDN fleet.
pub struct SpaceCdn {
    cfg: StarCdnConfig,
    tiling: Option<BucketTiling>,
    failures: FailureModel,
    caches: Vec<Box<dyn Cache + Send>>,
    /// Per-slot cold-restart flag: set when a satellite recovers from an
    /// outage with an empty cache, cleared by its first local hit.
    cold: Vec<bool>,
    /// Per-slot outstanding origin fetches (empty unless the delayed-hit
    /// model is enabled).
    inflight: Vec<InflightQueue>,
    /// Current scheduler epoch, the delayed-hit clock. Drivers call
    /// [`SpaceCdn::set_now_epoch`] at every epoch boundary.
    now_epoch: u64,
    latency: LatencyModel,
    /// Aggregate run metrics.
    pub metrics: SystemMetrics,
}

impl SpaceCdn {
    /// Build the fleet described by `cfg` with no failures.
    pub fn new(cfg: StarCdnConfig) -> Self {
        Self::with_failures(cfg, FailureModel::none())
    }

    /// Build the fleet with an outage set; bucket responsibilities of
    /// dead satellites are remapped per §3.4.
    pub fn with_failures(cfg: StarCdnConfig, failures: FailureModel) -> Self {
        let tiling = cfg.num_buckets.map(|l| {
            BucketTiling::new(l).unwrap_or_else(|e| panic!("invalid bucket count {l}: {e}"))
        });
        let caches = (0..cfg.grid.total_slots())
            .map(|_| cfg.policy.build(cfg.cache_capacity_bytes))
            .collect();
        let latency = LatencyModel { link: cfg.link_model.clone(), ..LatencyModel::default() };
        let cold = vec![false; cfg.grid.total_slots()];
        let inflight = (0..cfg.grid.total_slots()).map(|_| InflightQueue::new()).collect();
        SpaceCdn {
            cfg,
            tiling,
            failures,
            caches,
            cold,
            inflight,
            now_epoch: 0,
            latency,
            metrics: SystemMetrics::default(),
        }
    }

    /// Advance the delayed-hit clock to `epoch`. Drivers call this at
    /// every scheduler epoch boundary; with the model disabled it only
    /// stores a number.
    pub fn set_now_epoch(&mut self, epoch: u64) {
        self.now_epoch = epoch;
    }

    /// The current delayed-hit clock.
    pub fn now_epoch(&self) -> u64 {
        self.now_epoch
    }

    /// Read-only view of one satellite's outstanding-fetch queue.
    pub fn inflight_of(&self, id: SatelliteId) -> &InflightQueue {
        &self.inflight[self.cache_idx(id)]
    }

    /// The configuration in force.
    pub fn config(&self) -> &StarCdnConfig {
        &self.cfg
    }

    /// The failure model in force.
    pub fn failures(&self) -> &FailureModel {
        &self.failures
    }

    /// The latency model (calibration constants + link model).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The bucket tiling, when hashing is enabled.
    pub fn tiling(&self) -> Option<&BucketTiling> {
        self.tiling.as_ref()
    }

    fn cache_idx(&self, id: SatelliteId) -> usize {
        id.index(self.cfg.grid.sats_per_plane)
    }

    /// Read-only view of one satellite's cache.
    pub fn cache_of(&self, id: SatelliteId) -> &dyn Cache {
        self.caches[self.cache_idx(id)].as_ref()
    }

    /// The satellite that owns requests for `object` arriving at
    /// `first_contact`, with the route hop mix and degraded-mode context.
    /// `None` when every candidate owner is dead or unreachable.
    pub fn resolve_route(
        &self,
        first_contact: SatelliteId,
        object: ObjectId,
    ) -> Option<ResolvedRoute> {
        resolve_route_in(
            &self.cfg.grid,
            self.tiling.as_ref(),
            &self.failures,
            self.cfg.remap_on_failure,
            first_contact,
            object,
        )
    }

    /// [`SpaceCdn::resolve_route`] with the explicit three-way outcome
    /// (routed / partitioned / unroutable).
    pub fn classify_route(&self, first_contact: SatelliteId, object: ObjectId) -> RouteOutcome {
        classify_route_in_recorded(
            &self.cfg.grid,
            self.tiling.as_ref(),
            &self.failures,
            self.cfg.remap_on_failure,
            first_contact,
            object,
            &starcdn_telemetry::Noop,
        )
    }

    /// Handle one request arriving at `first_contact` with the given
    /// one-way user↔satellite GSL delay.
    pub fn handle_request(
        &mut self,
        first_contact: SatelliteId,
        object: ObjectId,
        size: u64,
        gsl_oneway_ms: f64,
    ) -> ServeOutcome {
        let route = match self.classify_route(first_contact, object) {
            RouteOutcome::Routed(route) => route,
            degraded @ (RouteOutcome::Partitioned { .. } | RouteOutcome::Unroutable) => {
                // No reachable owner: downlink straight from the
                // first-contact satellite (transient-failure path of
                // §3.4). A partition — live owner across a severed grid —
                // additionally bumps its own counter; the serve itself is
                // identical degraded bent-pipe either way.
                if matches!(degraded, RouteOutcome::Partitioned { .. }) {
                    self.metrics.partitioned_requests += 1;
                }
                let latency_ms = self.latency.ground_miss_rtt_ms(gsl_oneway_ms, 0, 0, 0);
                self.metrics.record(first_contact, ServedFrom::Ground, size, latency_ms);
                return ServeOutcome {
                    served_from: ServedFrom::Ground,
                    latency_ms,
                    uplink_bytes: size,
                    owner: first_contact,
                    route_hops: 0,
                    residual_epochs: 0,
                    fetch_retired: false,
                    coalesced: 0,
                };
            }
        };
        self.serve_routed(route, object, size, gsl_oneway_ms, 0.0)
    }

    /// Serve a request over an already-resolved route. The split from
    /// [`SpaceCdn::handle_request`] lets the overload lifecycle admit or
    /// shed on the route *before* any cache state is touched;
    /// `extra_latency_ms` carries the accumulated retry penalty (0.0 adds
    /// nothing and leaves the latency sample bit-identical).
    pub fn serve_routed(
        &mut self,
        route: ResolvedRoute,
        object: ObjectId,
        size: u64,
        gsl_oneway_ms: f64,
        extra_latency_ms: f64,
    ) -> ServeOutcome {
        let ResolvedRoute { owner, intra, inter, remapped, extra_hops } = route;
        if remapped {
            self.metrics.remapped_requests += 1;
        }
        self.metrics.reroute_extra_hops += extra_hops as u64;

        let owner_idx = self.cache_idx(owner);
        let span = self.cfg.relay_span_planes();

        // Delayed-hit preamble, mirroring `starcdn_cache::simulate::
        // access_delayed` branch for branch: retire a landed fetch
        // (admission + eviction-delay charge), then classify against the
        // cache and the outstanding queue. Fully gated — with the model
        // off, the plain auto-admitting access below runs unchanged.
        let delayed_cfg = self.cfg.delayed;
        let mut fetch_retired = false;
        let mut coalesced = 0u64;
        let mut residual_epochs = 0u64;
        if delayed_cfg.is_enabled() {
            if let Some(r) = self.inflight[owner_idx].take_completed(object, self.now_epoch) {
                self.caches[owner_idx].insert(object, r.size);
                self.caches[owner_idx].record_fetch_delay(object, r.delay_epochs);
                fetch_retired = true;
                coalesced = r.followers;
                self.metrics.coalesced_requests += r.followers;
            }
            if !self.caches[owner_idx].contains(object) {
                if let Some(res) = self.inflight[owner_idx].coalesce(object, self.now_epoch) {
                    residual_epochs = res;
                    self.metrics.delayed_hits += 1;
                    *self.metrics.residual_epoch_hist.entry(res).or_insert(0) += 1;
                }
            }
        }

        // Owner cache access. Plain model: a miss auto-admits (the owner
        // will cache the object wherever it ends up coming from).
        // Delayed model: a delayed hit counts as a space hit without
        // touching the cache, and a true miss does NOT admit — the
        // object is only admitted when its fetch retires.
        let local = if !delayed_cfg.is_enabled() {
            self.caches[owner_idx].access(object, size)
        } else if residual_epochs > 0 {
            AccessOutcome::Hit
        } else if self.caches[owner_idx].contains(object) {
            let hit = self.caches[owner_idx].access(object, size);
            debug_assert!(hit.is_hit());
            hit
        } else {
            AccessOutcome::Miss
        };
        if self.cold[owner_idx] {
            if local.is_hit() {
                // Re-warmed: cached content is flowing again.
                self.cold[owner_idx] = false;
            } else {
                self.metrics.cold_restart_misses += 1;
            }
        }

        let (served_from, latency_ms, uplink) = if local.is_hit() {
            (ServedFrom::LocalHit, self.latency.space_hit_rtt_ms(gsl_oneway_ms, intra, inter), 0)
        } else {
            // Table-3 monitor: neighbour availability at miss time.
            if self.cfg.probe_neighbors_on_miss {
                let west = self.neighbor_has(owner, span, true, object);
                let east = self.neighbor_has(owner, span, false, object);
                self.metrics.neighbor_availability.record(west, east, size);
            }

            let mut result = None;
            for (tag, neighbor) in
                relay_candidates(&self.cfg.grid, owner, span, self.cfg.relay, &self.failures)
            {
                let n_idx = self.cache_idx(neighbor);
                if self.caches[n_idx].contains(object) {
                    // Serving refreshes the neighbour's recency state.
                    self.caches[n_idx].access(object, size);
                    result = Some((
                        tag,
                        self.latency.relay_hit_rtt_ms(gsl_oneway_ms, intra, inter, span),
                        0u64,
                    ));
                    break;
                }
            }
            result.unwrap_or_else(|| {
                let relay_penalty = if self.cfg.relay.enabled() { span } else { 0 };
                (
                    ServedFrom::Ground,
                    self.latency.ground_miss_rtt_ms(gsl_oneway_ms, intra, inter, relay_penalty),
                    size,
                )
            })
        };

        let latency_ms = if self.cfg.model_transmission_delay {
            latency_ms + self.transmission_ms(served_from, size, intra + inter, span)
        } else {
            latency_ms
        };
        // Gated: `x + 0.0` is not a bitwise no-op for every float (-0.0),
        // and the no-penalty path must stay byte-identical.
        let latency_ms =
            if extra_latency_ms > 0.0 { latency_ms + extra_latency_ms } else { latency_ms };

        // The relayed copy crosses the ISL within the epoch: the owner
        // caches it immediately, with no origin fetch to wait out (the
        // plain model admits it through the auto-admitting access above).
        if delayed_cfg.is_enabled()
            && matches!(served_from, ServedFrom::RelayWest | ServedFrom::RelayEast)
        {
            self.caches[owner_idx].insert(object, size);
        }

        // Delayed-hit wait accounting: a ground miss starts a fetch and
        // waits it out in full; a delayed hit waits only the residual.
        // Relay hits wait nothing (served from a neighbour's cache).
        let latency_ms = if delayed_cfg.is_enabled() {
            if served_from == ServedFrom::Ground {
                let fetch_epochs = delayed_cfg.fetch_epochs_for(object);
                self.inflight[owner_idx].register(object, size, self.now_epoch, fetch_epochs);
                latency_ms + fetch_epochs as f64 * delayed_cfg.wait_ms_per_epoch
            } else if residual_epochs > 0 {
                latency_ms + residual_epochs as f64 * delayed_cfg.wait_ms_per_epoch
            } else {
                latency_ms
            }
        } else {
            latency_ms
        };

        self.metrics.record(owner, served_from, size, latency_ms);
        ServeOutcome {
            served_from,
            latency_ms,
            uplink_bytes: uplink,
            owner,
            route_hops: intra + inter,
            residual_epochs,
            fetch_retired,
            coalesced,
        }
    }

    /// First-order serialization delay of the response body: once per
    /// store-and-forward ISL hop (100 Gbps) plus the user service link
    /// (20 Gbps), plus the feeder uplink for ground fetches.
    fn transmission_ms(&self, from: ServedFrom, size: u64, route_hops: u16, span: u16) -> f64 {
        use crate::latency::transmission_delay_ms;
        let isl_bw = self.latency.link.inter_orbit.bandwidth_gbps;
        let gsl_bw = self.latency.link.gsl.bandwidth_gbps;
        let isl_hops = route_hops
            + match from {
                ServedFrom::RelayWest | ServedFrom::RelayEast => span,
                _ => 0,
            };
        let mut ms = isl_hops as f64 * transmission_delay_ms(size, isl_bw)
            + transmission_delay_ms(size, gsl_bw);
        if from == ServedFrom::Ground {
            // The object also crossed the feeder uplink.
            ms += transmission_delay_ms(size, gsl_bw);
        }
        ms
    }

    fn neighbor_has(&self, owner: SatelliteId, span: u16, west: bool, object: ObjectId) -> bool {
        let slot = if west {
            self.cfg.grid.west_by(owner, span)
        } else {
            self.cfg.grid.east_by(owner, span)
        };
        self.failures
            .resolve_owner(&self.cfg.grid, slot)
            .filter(|&s| s != owner)
            .map(|s| self.caches[self.cache_idx(s)].contains(object))
            .unwrap_or(false)
    }

    /// One proactive-prefetch round (the §3.3 rejected alternative):
    /// every alive satellite copies the `top_k` hottest objects of its
    /// west same-bucket neighbour into its own cache. Call once per
    /// scheduler epoch. Copies are charged to `metrics.prefetch_bytes`
    /// whether or not anyone ever requests them — that waste is exactly
    /// why the paper chose reactive relayed fetch instead.
    pub fn prefetch_round(&mut self) {
        let Some(top_k) = self.cfg.prefetch_top_k else { return };
        let span = self.cfg.relay_span_planes();
        // Plan all transfers against the pre-round state (the real system
        // runs them in parallel over ISLs), then apply — otherwise content
        // would cascade across the whole ring within a single round.
        let mut planned: Vec<(usize, ObjectId, u64)> = Vec::new();
        for id in self.cfg.grid.iter_ids() {
            if !self.failures.is_alive(id) {
                continue;
            }
            let west_slot = self.cfg.grid.west_by(id, span);
            let Some(west) =
                self.failures.resolve_owner(&self.cfg.grid, west_slot).filter(|&w| w != id)
            else {
                continue;
            };
            let own_idx = self.cache_idx(id);
            for (obj, size) in self.caches[self.cache_idx(west)].hottest(top_k) {
                if !self.caches[own_idx].contains(obj) {
                    planned.push((own_idx, obj, size));
                }
            }
        }
        for (idx, obj, size) in planned {
            if !self.caches[idx].contains(obj) {
                self.caches[idx].insert(obj, size);
                self.metrics.prefetch_bytes += size;
                self.metrics.prefetch_copies += 1;
            }
        }
    }

    /// Serve a request origin-direct from its first-contact satellite —
    /// the overload lifecycle's last resort after every replica shed it.
    /// Bent-pipe latency (no ISL legs) plus the accumulated retry
    /// penalty; bytes are charged to the uplink like any ground serve.
    pub fn serve_origin_fallback(
        &mut self,
        first_contact: SatelliteId,
        size: u64,
        gsl_oneway_ms: f64,
        extra_latency_ms: f64,
    ) -> f64 {
        let base = self.latency.ground_miss_rtt_ms(gsl_oneway_ms, 0, 0, 0);
        let latency_ms = if extra_latency_ms > 0.0 { base + extra_latency_ms } else { base };
        self.metrics.record(first_contact, ServedFrom::Ground, size, latency_ms);
        self.metrics.served_origin_fallback += 1;
        latency_ms
    }

    /// Record a request that could not reach any satellite (no satellite
    /// in view): served bent-pipe from the ground, like today's Starlink.
    pub fn handle_unreachable(&mut self, size: u64) -> f64 {
        let latency_ms = self.latency.starlink_no_cache_rtt_ms(self.latency.link.gsl.avg_delay_ms);
        self.metrics.record(
            SatelliteId::new(u16::MAX, u16::MAX),
            ServedFrom::Ground,
            size,
            latency_ms,
        );
        latency_ms
    }

    /// Swap in a new failure view (churn: the live view changes at epoch
    /// boundaries). Cache contents are untouched — use
    /// [`SpaceCdn::wipe_cache`] for satellites that actually went down.
    pub fn set_failures(&mut self, failures: FailureModel) {
        self.failures = failures;
    }

    /// Drop one satellite's cached content (it went out of service; its
    /// state does not survive the outage). Outstanding fetches die with
    /// it — their followers were already counted as delayed hits.
    pub fn wipe_cache(&mut self, id: SatelliteId) {
        let idx = self.cache_idx(id);
        self.caches[idx].clear();
        self.inflight[idx].clear();
        self.cold[idx] = false;
    }

    /// Mark a satellite as freshly recovered: its next misses count as
    /// cold-restart misses until the first local hit.
    pub fn mark_cold(&mut self, id: SatelliteId) {
        let idx = self.cache_idx(id);
        self.cold[idx] = true;
    }

    /// Is this satellite still in its post-recovery warm-up?
    pub fn is_cold(&self, id: SatelliteId) -> bool {
        self.cold[self.cache_idx(id)]
    }

    /// Append one availability sample for the epoch that just started.
    pub fn record_availability(&mut self, epoch: u64) {
        let total = self.cfg.grid.total_slots();
        let alive = (total - self.failures.dead_count()) as u32;
        self.metrics.availability.push(crate::metrics::AvailabilityPoint {
            epoch,
            alive_sats: alive,
            cut_links: self.failures.cut_link_count() as u32,
        });
    }

    /// Drop all cached content and metrics (fresh run, same config).
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
        for q in &mut self.inflight {
            q.clear();
        }
        self.cold.fill(false);
        self.now_epoch = 0;
        self.metrics = SystemMetrics::default();
    }

    /// Zero the metrics but keep all cached content — used to discount a
    /// warm-up phase from measurements (the paper's 5-day replays make
    /// cold-start negligible; shorter runs subtract it explicitly).
    pub fn reset_metrics(&mut self) {
        self.metrics = SystemMetrics::default();
    }

    /// Export every piece of run-dependent fleet state (checkpoint
    /// hook): per-slot cache states in slot order, cold flags, the live
    /// failure view, and the accumulated metrics. Everything else
    /// (tiling, latency model) is derivable from the config.
    pub fn export_state(&self) -> CdnState {
        CdnState {
            failures: self.failures.clone(),
            caches: self.caches.iter().map(|c| c.to_state()).collect(),
            cold: self.cold.clone(),
            inflight: self.inflight.iter().map(|q| q.to_state()).collect(),
            metrics: self.metrics.clone(),
        }
    }

    /// Restore fleet state exported by [`SpaceCdn::export_state`] into a
    /// freshly built fleet of the same config. Validates shape and cache
    /// invariants; on error the fleet is left unchanged.
    pub fn import_state(&mut self, state: CdnState) -> Result<(), CdnStateError> {
        let slots = self.cfg.grid.total_slots();
        if state.caches.len() != slots || state.cold.len() != slots || state.inflight.len() != slots
        {
            return Err(CdnStateError::SlotCountMismatch {
                expected: slots,
                got: state.caches.len().max(state.cold.len()).max(state.inflight.len()),
            });
        }
        let expected = self.cfg.policy.name();
        let mut rebuilt = Vec::with_capacity(slots);
        for (slot, cs) in state.caches.iter().enumerate() {
            if cs.policy_name() != expected {
                return Err(CdnStateError::PolicyMismatch {
                    slot,
                    expected,
                    got: cs.policy_name(),
                });
            }
            rebuilt.push(cs.build().map_err(CdnStateError::Cache)?);
        }
        let mut queues = Vec::with_capacity(slots);
        for qs in &state.inflight {
            queues.push(InflightQueue::from_state(qs).map_err(CdnStateError::Inflight)?);
        }
        self.caches = rebuilt;
        self.cold = state.cold;
        self.inflight = queues;
        self.failures = state.failures;
        self.metrics = state.metrics;
        Ok(())
    }
}

/// The run-dependent state of a [`SpaceCdn`], as exported by
/// [`SpaceCdn::export_state`]. Plain data: the checkpoint layer decides
/// how each part is encoded on disk.
#[derive(Debug, Clone)]
pub struct CdnState {
    pub failures: FailureModel,
    pub caches: Vec<starcdn_cache::CacheState>,
    pub cold: Vec<bool>,
    /// Per-slot outstanding-fetch queues, slot order (all empty unless
    /// the delayed-hit model is enabled).
    pub inflight: Vec<InflightState>,
    pub metrics: SystemMetrics,
}

/// Why a [`CdnState`] could not be imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdnStateError {
    /// The state was exported from a different constellation size.
    SlotCountMismatch { expected: usize, got: usize },
    /// A slot's cache state belongs to a different eviction policy.
    PolicyMismatch { slot: usize, expected: &'static str, got: &'static str },
    /// A cache state failed its structural validation.
    Cache(starcdn_cache::StateError),
    /// An outstanding-fetch queue failed its structural validation.
    Inflight(starcdn_cache::StateError),
}

impl std::fmt::Display for CdnStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdnStateError::SlotCountMismatch { expected, got } => {
                write!(f, "fleet state has {got} slots, this constellation has {expected}")
            }
            CdnStateError::PolicyMismatch { slot, expected, got } => {
                write!(f, "slot {slot} cache state is `{got}`, config wants `{expected}`")
            }
            CdnStateError::Cache(e) => write!(f, "cache state: {e}"),
            CdnStateError::Inflight(e) => write!(f, "in-flight fetch state: {e}"),
        }
    }
}

impl std::error::Error for CdnStateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StarCdnConfig;

    const CAP: u64 = 10_000;

    fn system(l: u32) -> SpaceCdn {
        SpaceCdn::new(StarCdnConfig::starcdn(l, CAP))
    }

    #[test]
    fn first_request_is_ground_second_is_hit() {
        let mut cdn = system(4);
        let sat = SatelliteId::new(10, 5);
        let o1 = cdn.handle_request(sat, ObjectId(1), 100, 2.9);
        assert_eq!(o1.served_from, ServedFrom::Ground);
        assert_eq!(o1.uplink_bytes, 100);
        let o2 = cdn.handle_request(sat, ObjectId(1), 100, 2.9);
        assert_eq!(o2.served_from, ServedFrom::LocalHit);
        assert_eq!(o2.uplink_bytes, 0);
        assert!(o2.latency_ms < o1.latency_ms);
        assert_eq!(o1.owner, o2.owner, "same object routes to the same owner");
    }

    #[test]
    fn requests_from_different_sats_share_one_owner_cache() {
        // §5.2.1's core claim: adjacent users scheduled to different
        // satellites still hit the same cache under hashing.
        let mut cdn = system(4);
        let a = SatelliteId::new(10, 5);
        let b = SatelliteId::new(11, 5); // different first contact, same tile
        cdn.handle_request(a, ObjectId(7), 100, 2.9);
        let o = cdn.handle_request(b, ObjectId(7), 100, 2.9);
        assert_eq!(o.served_from, ServedFrom::LocalHit);
    }

    #[test]
    fn without_hashing_no_sharing() {
        let mut cdn = SpaceCdn::new(StarCdnConfig::naive_lru(CAP));
        let a = SatelliteId::new(10, 5);
        let b = SatelliteId::new(11, 5);
        cdn.handle_request(a, ObjectId(7), 100, 2.9);
        let o = cdn.handle_request(b, ObjectId(7), 100, 2.9);
        assert_eq!(o.served_from, ServedFrom::Ground, "naive LRU caches independently");
        assert_eq!(o.owner, b);
        assert_eq!(o.route_hops, 0);
    }

    #[test]
    fn route_hops_within_worst_case() {
        let mut cdn = system(9);
        let bound = cdn.tiling().unwrap().worst_case_hops();
        for s in 0..18u16 {
            for o in (0..72u16).step_by(7) {
                let out = cdn.handle_request(
                    SatelliteId::new(o, s),
                    ObjectId((o * 31 + s) as u64),
                    10,
                    2.9,
                );
                assert!(out.route_hops <= bound, "hops {} > bound {bound}", out.route_hops);
            }
        }
    }

    #[test]
    fn relay_west_serves_after_west_owner_cached() {
        let mut cdn = system(4);
        // Find the owner of an object from one first-contact satellite.
        let fc = SatelliteId::new(10, 5);
        let owner = cdn.resolve_route(fc, ObjectId(3)).unwrap().owner;
        // Seed the object at the owner's west same-bucket neighbour by
        // sending a request whose first contact *is* that neighbour.
        let west = cdn.config().grid.west_by(owner, 2);
        let o1 = cdn.handle_request(west, ObjectId(3), 100, 2.9);
        assert_eq!(o1.owner, west, "west neighbour owns the same bucket");
        assert_eq!(o1.served_from, ServedFrom::Ground);
        // Now request via the original first contact: owner misses, west
        // relay hits.
        let o2 = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        assert_eq!(o2.served_from, ServedFrom::RelayWest);
        assert_eq!(o2.uplink_bytes, 0, "relay saves the uplink");
        // And the owner cached the relayed copy: next time is a local hit.
        let o3 = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        assert_eq!(o3.served_from, ServedFrom::LocalHit);
    }

    #[test]
    fn no_relay_variant_goes_to_ground() {
        let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn_no_relay(4, CAP));
        let fc = SatelliteId::new(10, 5);
        let owner = cdn.resolve_route(fc, ObjectId(3)).unwrap().owner;
        let west = cdn.config().grid.west_by(owner, 2);
        cdn.handle_request(west, ObjectId(3), 100, 2.9);
        let o = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        assert_eq!(o.served_from, ServedFrom::Ground, "no relay configured");
    }

    #[test]
    fn relay_latency_between_hit_and_miss() {
        let mut cdn = system(4);
        let fc = SatelliteId::new(10, 5);
        let owner = cdn.resolve_route(fc, ObjectId(3)).unwrap().owner;
        let west = cdn.config().grid.west_by(owner, 2);
        cdn.handle_request(west, ObjectId(3), 100, 2.9);
        let relay = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        let hit = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        let miss = cdn.handle_request(fc, ObjectId(999), 100, 2.9);
        assert!(
            hit.latency_ms < relay.latency_ms,
            "hit {} relay {}",
            hit.latency_ms,
            relay.latency_ms
        );
        assert!(
            relay.latency_ms < miss.latency_ms,
            "relay {} miss {}",
            relay.latency_ms,
            miss.latency_ms
        );
    }

    #[test]
    fn failure_remap_still_serves() {
        let cfg = StarCdnConfig::starcdn(9, CAP);
        let fc = SatelliteId::new(10, 5);
        // Kill the preferred owner for this object.
        let probe = SpaceCdn::new(cfg.clone());
        let preferred = probe.resolve_route(fc, ObjectId(5)).unwrap().owner;
        let failures = FailureModel::from_dead([preferred]);
        let mut cdn = SpaceCdn::with_failures(cfg, failures);
        let o1 = cdn.handle_request(fc, ObjectId(5), 100, 2.9);
        assert_ne!(o1.owner, preferred);
        assert!(cdn.failures().is_alive(o1.owner));
        let o2 = cdn.handle_request(fc, ObjectId(5), 100, 2.9);
        assert_eq!(o2.served_from, ServedFrom::LocalHit, "remapped owner caches");
        assert_eq!(cdn.metrics.remapped_requests, 2, "both requests were remapped");
    }

    #[test]
    fn cold_restart_misses_tracked_until_first_hit() {
        let mut cdn = system(4);
        let fc = SatelliteId::new(10, 5);
        let owner = cdn.resolve_route(fc, ObjectId(3)).unwrap().owner;
        // Warm the owner, then restart it: wipe + mark cold.
        cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        cdn.wipe_cache(owner);
        cdn.mark_cold(owner);
        assert!(cdn.is_cold(owner));
        let o = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        assert_eq!(o.served_from, ServedFrom::Ground, "restart lost the cache");
        assert_eq!(cdn.metrics.cold_restart_misses, 1);
        // The fetch re-admitted the object: the next access is the first
        // local hit, which ends the warm-up.
        cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        assert!(!cdn.is_cold(owner));
        let before = cdn.metrics.cold_restart_misses;
        cdn.handle_request(fc, ObjectId(99), 100, 2.9);
        assert_eq!(cdn.metrics.cold_restart_misses, before, "warm again: plain miss");
    }

    #[test]
    fn cut_link_on_route_costs_extra_hops() {
        let cfg = StarCdnConfig::starcdn(4, CAP);
        let fc = SatelliteId::new(10, 5);
        let probe = SpaceCdn::new(cfg.clone());
        let route = probe.resolve_route(fc, ObjectId(3)).unwrap();
        if route.hops() == 0 {
            return; // owner is the first contact; nothing to cut
        }
        // Cut the first link of the canonical path.
        let grid = cfg.grid.clone();
        let path = starcdn_constellation::routing::shortest_path(&grid, fc, route.owner);
        let failures = FailureModel::from_outages([], [(path.nodes[0], path.nodes[1])]);
        let mut cdn = SpaceCdn::with_failures(cfg, failures);
        let rerouted = cdn.resolve_route(fc, ObjectId(3)).unwrap();
        assert_eq!(rerouted.owner, route.owner, "link cuts never change ownership");
        assert!(!rerouted.remapped);
        assert!(rerouted.hops() >= route.hops(), "detour cannot shorten the route");
        cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        assert_eq!(cdn.metrics.reroute_extra_hops, rerouted.extra_hops as u64);
    }

    #[test]
    fn partitioned_owner_degrades_to_bent_pipe() {
        // Sever every ISL of the first contact: the owner stays alive,
        // but no surviving path connects them — a partition, not an
        // unroutable request.
        let cfg = StarCdnConfig::starcdn(9, CAP);
        let fc = SatelliteId::new(10, 5);
        let probe = SpaceCdn::new(cfg.clone());
        let route = probe.resolve_route(fc, ObjectId(5)).unwrap();
        assert!(route.hops() > 0, "pick an object owned elsewhere");
        let grid = cfg.grid.clone();
        let failures =
            FailureModel::from_outages([], grid.neighbors(fc).into_iter().map(|(_, n)| (fc, n)));
        let mut cdn = SpaceCdn::with_failures(cfg, failures);
        match cdn.classify_route(fc, ObjectId(5)) {
            RouteOutcome::Partitioned { owner } => assert_eq!(owner, route.owner),
            other => panic!("expected a partition, got {other:?}"),
        }
        assert_eq!(cdn.resolve_route(fc, ObjectId(5)), None, "Option view collapses to None");
        let out = cdn.handle_request(fc, ObjectId(5), 100, 2.9);
        assert_eq!(out.served_from, ServedFrom::Ground, "degrades to the bent pipe");
        assert_eq!(out.uplink_bytes, 100);
        assert_eq!(out.route_hops, 0);
        assert_eq!(cdn.metrics.partitioned_requests, 1);
    }

    #[test]
    fn dead_owner_chain_is_unroutable_not_partitioned() {
        // Without remapping, a dead preferred owner is Unroutable: the
        // degraded serve is identical but the partition counter stays 0.
        let cfg = StarCdnConfig { remap_on_failure: false, ..StarCdnConfig::starcdn(9, CAP) };
        let fc = SatelliteId::new(10, 5);
        let probe = SpaceCdn::new(cfg.clone());
        let owner = probe.resolve_route(fc, ObjectId(5)).unwrap().owner;
        assert_ne!(owner, fc);
        let mut cdn = SpaceCdn::with_failures(cfg, FailureModel::from_dead([owner]));
        assert_eq!(cdn.classify_route(fc, ObjectId(5)), RouteOutcome::Unroutable);
        let out = cdn.handle_request(fc, ObjectId(5), 100, 2.9);
        assert_eq!(out.served_from, ServedFrom::Ground);
        assert_eq!(cdn.metrics.partitioned_requests, 0);
    }

    #[test]
    fn record_availability_snapshots_failure_view() {
        let g = StarCdnConfig::starcdn(4, CAP).grid;
        let total = g.total_slots() as u32;
        let mut failures = FailureModel::from_dead([SatelliteId::new(1, 1)]);
        failures.cut_link(SatelliteId::new(2, 2), SatelliteId::new(2, 3));
        let mut cdn = SpaceCdn::with_failures(StarCdnConfig::starcdn(4, CAP), failures);
        cdn.record_availability(0);
        cdn.set_failures(FailureModel::none());
        cdn.record_availability(1);
        assert_eq!(cdn.metrics.availability.len(), 2);
        assert_eq!(cdn.metrics.availability[0].alive_sats, total - 1);
        assert_eq!(cdn.metrics.availability[0].cut_links, 1);
        assert_eq!(cdn.metrics.availability[1].alive_sats, total);
        assert_eq!(cdn.metrics.availability[1].cut_links, 0);
    }

    #[test]
    fn neighbor_probe_populates_table3_monitor() {
        let mut cfg = StarCdnConfig::starcdn(4, CAP);
        cfg.probe_neighbors_on_miss = true;
        let mut cdn = SpaceCdn::new(cfg);
        let fc = SatelliteId::new(10, 5);
        let owner = cdn.resolve_route(fc, ObjectId(3)).unwrap().owner;
        let west = cdn.config().grid.west_by(owner, 2);
        cdn.handle_request(west, ObjectId(3), 100, 2.9); // seed west
        cdn.handle_request(fc, ObjectId(3), 100, 2.9); // owner miss: west has it
        cdn.handle_request(fc, ObjectId(42), 50, 2.9); // owner miss: nobody has it
        let n = cdn.metrics.neighbor_availability;
        assert_eq!(n.west_only_requests, 1);
        assert_eq!(n.west_only_bytes, 100);
        assert_eq!(n.neither_requests, 2, "seed miss + unseeded miss");
    }

    #[test]
    fn prefetch_round_copies_west_content() {
        let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn_prefetch(4, CAP, 8));
        // Seed an object at some owner by sending a request there.
        let fc = SatelliteId::new(10, 5);
        let o = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
        let owner = o.owner;
        // The owner's *east* same-bucket neighbour prefetches from its
        // west neighbour — which is `owner`.
        let east = cdn.config().grid.east_by(owner, 2);
        assert!(!cdn.cache_of(east).contains(ObjectId(3)));
        cdn.prefetch_round();
        assert!(cdn.cache_of(east).contains(ObjectId(3)), "prefetch should copy west→east");
        assert_eq!(cdn.metrics.prefetch_bytes, 100, "exactly one 100 B copy in round one");
        assert_eq!(cdn.metrics.prefetch_copies, 1);
        // Each further round moves the object one more hop east (it does
        // not cascade within a round).
        cdn.prefetch_round();
        assert_eq!(cdn.metrics.prefetch_copies, 2);
        let east2 = cdn.config().grid.east_by(owner, 4);
        assert!(cdn.cache_of(east2).contains(ObjectId(3)));
    }

    #[test]
    fn prefetch_disabled_is_noop() {
        let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn(4, CAP));
        cdn.handle_request(SatelliteId::new(10, 5), ObjectId(3), 100, 2.9);
        cdn.prefetch_round();
        assert_eq!(cdn.metrics.prefetch_bytes, 0);
        assert_eq!(cdn.metrics.prefetch_copies, 0);
    }

    #[test]
    fn transmission_delay_raises_latency_by_size() {
        // Caches big enough to admit the multi-MiB object.
        let cap = 64 << 20;
        let mut idle = SpaceCdn::new(StarCdnConfig::starcdn(4, cap));
        let mut cfg = StarCdnConfig::starcdn(4, cap);
        cfg.model_transmission_delay = true;
        let mut loaded = SpaceCdn::new(cfg);
        let fc = SatelliteId::new(10, 5);
        let size = 5 << 20; // 5 MiB
        let a = idle.handle_request(fc, ObjectId(1), size, 2.9);
        let b = loaded.handle_request(fc, ObjectId(1), size, 2.9);
        assert!(b.latency_ms > a.latency_ms, "{} !> {}", b.latency_ms, a.latency_ms);
        // A ground miss serializes the object over the GSL twice
        // (up + down): ≥ 2 × 2.1 ms for 5 MiB at 20 Gbps.
        assert!(b.latency_ms - a.latency_ms >= 4.0, "delta {}", b.latency_ms - a.latency_ms);
        // Hits pay less extra (no feeder uplink).
        let a2 = idle.handle_request(fc, ObjectId(1), size, 2.9);
        let b2 = loaded.handle_request(fc, ObjectId(1), size, 2.9);
        assert!(b2.latency_ms - a2.latency_ms < b.latency_ms - a.latency_ms);
        // Tiny objects barely notice.
        let a3 = idle.handle_request(fc, ObjectId(2), 100, 2.9);
        let b3 = loaded.handle_request(fc, ObjectId(2), 100, 2.9);
        assert!((b3.latency_ms - a3.latency_ms) < 0.01);
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let mut cdn = system(4);
        let sat = SatelliteId::new(0, 0);
        cdn.handle_request(sat, ObjectId(1), 100, 2.9);
        cdn.handle_request(sat, ObjectId(1), 100, 2.9);
        assert_eq!(cdn.metrics.stats.requests, 2);
        assert_eq!(cdn.metrics.served_ground, 1);
        assert_eq!(cdn.metrics.served_local, 1);
        assert!((cdn.metrics.uplink_fraction() - 0.5).abs() < 1e-12);
        cdn.reset();
        assert_eq!(cdn.metrics.stats.requests, 0);
        let o = cdn.handle_request(sat, ObjectId(1), 100, 2.9);
        assert_eq!(o.served_from, ServedFrom::Ground, "caches cleared");
    }

    mod delayed {
        use super::*;
        use crate::config::DelayedHitConfig;

        fn delayed_system(fetch_epochs: u64, wait_ms: f64) -> SpaceCdn {
            let cfg = StarCdnConfig::starcdn(4, CAP)
                .with_delayed_hits(DelayedHitConfig::with_latency(fetch_epochs, wait_ms));
            SpaceCdn::new(cfg)
        }

        #[test]
        fn miss_registers_fetch_and_does_not_admit() {
            let mut cdn = delayed_system(2, 10.0);
            let fc = SatelliteId::new(10, 5);
            cdn.set_now_epoch(0);
            let o = cdn.handle_request(fc, ObjectId(1), 100, 2.9);
            assert_eq!(o.served_from, ServedFrom::Ground);
            assert_eq!(o.residual_epochs, 0);
            assert!(!o.fetch_retired);
            let owner = o.owner;
            assert!(!cdn.cache_of(owner).contains(ObjectId(1)), "no admission before retirement");
            assert_eq!(cdn.inflight_of(owner).len(), 1);
            // The miss waited out the whole fetch: 2 epochs × 10 ms.
            let plain = SpaceCdn::new(StarCdnConfig::starcdn(4, CAP))
                .handle_request(fc, ObjectId(1), 100, 2.9)
                .latency_ms;
            assert!((o.latency_ms - plain - 20.0).abs() < 1e-9);
        }

        #[test]
        fn coalesced_request_is_a_delayed_hit_with_residual() {
            let mut cdn = delayed_system(3, 10.0);
            let fc = SatelliteId::new(10, 5);
            cdn.set_now_epoch(0);
            cdn.handle_request(fc, ObjectId(1), 100, 2.9); // miss, completes at 3
            cdn.set_now_epoch(1);
            let o = cdn.handle_request(fc, ObjectId(1), 100, 2.9);
            assert_eq!(o.served_from, ServedFrom::LocalHit, "delayed hit is a space hit");
            assert_eq!(o.residual_epochs, 2);
            assert_eq!(o.uplink_bytes, 0);
            assert_eq!(cdn.metrics.delayed_hits, 1);
            assert_eq!(cdn.metrics.residual_epoch_hist[&2], 1);
            assert_eq!(cdn.metrics.coalesced_requests, 0, "follower not yet retired");
            // Retirement: the next touch at/after epoch 3 admits the
            // object and credits the follower.
            cdn.set_now_epoch(3);
            let o = cdn.handle_request(fc, ObjectId(1), 100, 2.9);
            assert_eq!(o.served_from, ServedFrom::LocalHit);
            assert!(o.fetch_retired);
            assert_eq!(o.coalesced, 1);
            assert_eq!(o.residual_epochs, 0);
            assert_eq!(cdn.metrics.coalesced_requests, 1);
            assert!(cdn.cache_of(o.owner).contains(ObjectId(1)));
            assert!(cdn.inflight_of(o.owner).is_empty());
        }

        #[test]
        fn relay_hit_admits_owner_copy_without_a_fetch() {
            let mut cdn = delayed_system(2, 10.0);
            let fc = SatelliteId::new(10, 5);
            let owner = cdn.resolve_route(fc, ObjectId(3)).unwrap().owner;
            let west = cdn.config().grid.west_by(owner, 2);
            // Seed the west neighbour: miss at epoch 0, retire at 2.
            cdn.set_now_epoch(0);
            cdn.handle_request(west, ObjectId(3), 100, 2.9);
            cdn.set_now_epoch(2);
            cdn.handle_request(west, ObjectId(3), 100, 2.9);
            assert!(cdn.cache_of(west).contains(ObjectId(3)));
            // Owner miss → relay west hit; the ISL copy admits instantly.
            let o = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
            assert_eq!(o.served_from, ServedFrom::RelayWest);
            assert!(cdn.cache_of(owner).contains(ObjectId(3)));
            assert!(cdn.inflight_of(owner).is_empty(), "relay hit starts no origin fetch");
            let o2 = cdn.handle_request(fc, ObjectId(3), 100, 2.9);
            assert_eq!(o2.served_from, ServedFrom::LocalHit);
        }

        #[test]
        fn wipe_clears_outstanding_fetches() {
            let mut cdn = delayed_system(4, 10.0);
            let fc = SatelliteId::new(10, 5);
            cdn.set_now_epoch(0);
            let o = cdn.handle_request(fc, ObjectId(1), 100, 2.9);
            assert_eq!(cdn.inflight_of(o.owner).len(), 1);
            cdn.wipe_cache(o.owner);
            assert!(cdn.inflight_of(o.owner).is_empty());
        }

        #[test]
        fn state_roundtrip_preserves_inflight_queues() {
            let mut cdn = delayed_system(5, 10.0);
            let fc = SatelliteId::new(10, 5);
            cdn.set_now_epoch(1);
            let o = cdn.handle_request(fc, ObjectId(1), 100, 2.9); // completes at 6
            cdn.set_now_epoch(2);
            cdn.handle_request(fc, ObjectId(1), 100, 2.9); // follower, residual 4
            let state = cdn.export_state();
            let mut fresh = delayed_system(5, 10.0);
            fresh.import_state(state).unwrap();
            fresh.set_now_epoch(3);
            let q = fresh.inflight_of(o.owner);
            assert_eq!(q.len(), 1);
            let f = q.get(ObjectId(1)).unwrap();
            assert_eq!(f.completes_at, 6);
            assert_eq!(f.followers, 1);
            // The restored queue keeps coalescing where it left off.
            let o2 = fresh.handle_request(fc, ObjectId(1), 100, 2.9);
            assert_eq!(o2.residual_epochs, 3);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn prop_serve_invariants(
                reqs in proptest::collection::vec(
                    (0u16..72, 0u16..18, 0u64..200, 1u64..5000), 1..300),
                l_idx in 0usize..2,
            ) {
                let l = [4u32, 9][l_idx];
                let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn(l, 200_000));
                let bound = cdn.tiling().unwrap().worst_case_hops();
                let mut expected_uplink = 0u64;
                let mut expected_bytes = 0u64;
                for (o, s, obj, size) in reqs {
                    let out = cdn.handle_request(
                        SatelliteId::new(o, s), ObjectId(obj), size, 2.9,
                    );
                    prop_assert!(out.latency_ms > 0.0);
                    prop_assert!(out.route_hops <= bound);
                    prop_assert_eq!(out.uplink_bytes > 0, out.served_from == ServedFrom::Ground);
                    expected_uplink += out.uplink_bytes;
                    expected_bytes += size;
                    // Owner serves the object's bucket.
                    let t = cdn.tiling().unwrap();
                    prop_assert_eq!(
                        t.bucket_of_sat(out.owner),
                        t.bucket_of_object(ObjectId(obj).hash64())
                    );
                }
                prop_assert_eq!(cdn.metrics.uplink_bytes, expected_uplink);
                prop_assert_eq!(cdn.metrics.stats.bytes_requested, expected_bytes);
                let served = cdn.metrics.served_local
                    + cdn.metrics.served_relay_west
                    + cdn.metrics.served_relay_east
                    + cdn.metrics.served_ground;
                prop_assert_eq!(served, cdn.metrics.stats.requests);
            }

            #[test]
            fn prop_latency_ordering_hit_vs_miss(
                o in 0u16..72, s in 0u16..18, size in 1u64..10_000,
            ) {
                let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn(4, 1_000_000));
                let fc = SatelliteId::new(o, s);
                let miss = cdn.handle_request(fc, ObjectId(1), size, 2.9);
                let hit = cdn.handle_request(fc, ObjectId(1), size, 2.9);
                prop_assert_eq!(miss.served_from, ServedFrom::Ground);
                prop_assert_eq!(hit.served_from, ServedFrom::LocalHit);
                prop_assert!(hit.latency_ms < miss.latency_ms);
            }
        }
    }

    #[test]
    fn cache_eviction_under_pressure() {
        // Tiny caches: streaming distinct objects through one owner must
        // keep used_bytes bounded.
        let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn(4, 500));
        let sat = SatelliteId::new(3, 3);
        for i in 0..100u64 {
            cdn.handle_request(sat, ObjectId(i * 4), 100, 2.9); // same bucket-ish spread
        }
        for idx in 0..cdn.config().grid.total_slots() {
            let id = SatelliteId::from_index(idx, 18);
            assert!(cdn.cache_of(id).used_bytes() <= 500);
        }
    }
}
