//! The named system variants of the paper's evaluation (Fig. 7/8/10/12).

use crate::config::StarCdnConfig;
use serde::{Deserialize, Serialize};

/// Every curve the paper plots against cache size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Ideal upper bound: no orbital motion, per-location static caches.
    StaticCache,
    /// The full system: hashing with `l` buckets + relayed fetch.
    StarCdn { l: u32 },
    /// "StarCDN-Fetch": hashing only, no relayed fetch.
    StarCdnNoRelay { l: u32 },
    /// "StarCDN-Hashing": relayed fetch only, no hashing.
    StarCdnNoHashing,
    /// Proactive prefetch instead of relayed fetch (the §3.3 rejected
    /// alternative; `k` objects copied from the west neighbour per epoch).
    StarCdnPrefetch { l: u32, k: usize },
    /// Naive per-satellite LRU (prior work's proposal).
    NaiveLru,
    /// Today's Starlink: no cache in space.
    NoCache,
    /// Terrestrial users on a terrestrial CDN (latency reference only).
    TerrestrialCdn,
}

impl Variant {
    /// The paper's label for this curve.
    pub fn label(self) -> String {
        match self {
            Variant::StaticCache => "Static Cache".into(),
            Variant::StarCdn { l } => format!("StarCDN (L={l})"),
            Variant::StarCdnNoRelay { l } => format!("StarCDN-Fetch (L={l})"),
            Variant::StarCdnNoHashing => "StarCDN-Hashing".into(),
            Variant::StarCdnPrefetch { l, k } => format!("StarCDN-Prefetch (L={l}, k={k})"),
            Variant::NaiveLru => "LRU".into(),
            Variant::NoCache => "Starlink (no cache)".into(),
            Variant::TerrestrialCdn => "Terrestrial CDN".into(),
        }
    }

    /// The [`StarCdnConfig`] for the space-fleet variants; `None` for
    /// the baselines that are not satellite fleets.
    pub fn space_config(self, cache_capacity_bytes: u64) -> Option<StarCdnConfig> {
        match self {
            Variant::StarCdn { l } => Some(StarCdnConfig::starcdn(l, cache_capacity_bytes)),
            Variant::StarCdnNoRelay { l } => {
                Some(StarCdnConfig::starcdn_no_relay(l, cache_capacity_bytes))
            }
            Variant::StarCdnNoHashing => {
                Some(StarCdnConfig::starcdn_no_hashing(cache_capacity_bytes))
            }
            Variant::StarCdnPrefetch { l, k } => {
                Some(StarCdnConfig::starcdn_prefetch(l, cache_capacity_bytes, k))
            }
            Variant::NaiveLru => Some(StarCdnConfig::naive_lru(cache_capacity_bytes)),
            Variant::StaticCache | Variant::NoCache | Variant::TerrestrialCdn => None,
        }
    }

    /// The five hit-rate curves of Fig. 7 for a given `L`.
    pub fn fig7_set(l: u32) -> [Variant; 5] {
        [
            Variant::StaticCache,
            Variant::StarCdn { l },
            Variant::StarCdnNoRelay { l },
            Variant::StarCdnNoHashing,
            Variant::NaiveLru,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelayPolicy;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::StarCdn { l: 4 }.label(), "StarCDN (L=4)");
        assert_eq!(Variant::StarCdnNoRelay { l: 9 }.label(), "StarCDN-Fetch (L=9)");
        assert_eq!(Variant::NaiveLru.label(), "LRU");
    }

    #[test]
    fn space_configs_wire_the_right_features() {
        let c = Variant::StarCdn { l: 9 }.space_config(10).unwrap();
        assert_eq!(c.num_buckets, Some(9));
        assert_eq!(c.relay, RelayPolicy::Both);

        let c = Variant::StarCdnNoRelay { l: 9 }.space_config(10).unwrap();
        assert_eq!(c.relay, RelayPolicy::None);

        let c = Variant::StarCdnNoHashing.space_config(10).unwrap();
        assert_eq!(c.num_buckets, None);
        assert!(c.relay.enabled());

        let c = Variant::StarCdnPrefetch { l: 4, k: 16 }.space_config(10).unwrap();
        assert_eq!(c.prefetch_top_k, Some(16));
        assert!(!c.relay.enabled());

        let c = Variant::NaiveLru.space_config(10).unwrap();
        assert_eq!(c.num_buckets, None);
        assert!(!c.relay.enabled());

        assert!(Variant::StaticCache.space_config(10).is_none());
        assert!(Variant::NoCache.space_config(10).is_none());
        assert!(Variant::TerrestrialCdn.space_config(10).is_none());
    }

    #[test]
    fn fig7_has_five_curves() {
        let set = Variant::fig7_set(4);
        assert_eq!(set.len(), 5);
        assert!(set.contains(&Variant::StaticCache));
        assert!(set.contains(&Variant::NaiveLru));
    }
}
