//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses. No statistics: each benchmark body runs a handful of times and
//! a single coarse wall-clock timing is printed, which is enough for
//! the benches to compile, run, and smoke-test their setup code.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const STUB_ITERS: u64 = 3;

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    _priv: (),
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { _priv: () };
    let start = Instant::now();
    f(&mut b);
    eprintln!("bench {label}: {:?} ({STUB_ITERS} iters, stub)", start.elapsed());
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
