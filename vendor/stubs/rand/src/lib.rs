//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//! Deterministic splitmix64 behind `StdRng`; `gen`, `gen_range`,
//! `seed_from_u64` only.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen<T: Generable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub trait Generable {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generable for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Generable for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::generate(rng) as f32
    }
}

impl Generable for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generable for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Generable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The output type is a free parameter (as in real rand) so a bare
/// `0..20` literal infers its type from the call site's expected value.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::generate(rng) * (self.end - self.start)
    }
}

/// Splitmix64: a small, fast, well-distributed deterministic generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Run the seed through one full mix round so nearby seeds start
        // in well-separated stream positions.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng { state: z ^ (z >> 31) }
    }
}

/// Same engine as [`StdRng`]; kept as a distinct type for API parity.
#[derive(Debug, Clone)]
pub struct SmallRng(StdRng);

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng(StdRng::seed_from_u64(seed))
    }
}

pub mod rngs {
    pub use super::{SmallRng, StdRng};
}

pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, SmallRng, StdRng};
}
