//! Offline stand-in for `bytes`; the workspace declares the dependency
//! but uses no items from it.
