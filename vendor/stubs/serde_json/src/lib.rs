//! Offline stand-in for `serde_json` that really encodes and decodes.
//!
//! Works over the vendored `serde` stub's [`Value`](serde::Value) tree:
//! serialization materializes the tree and prints RFC 8259 JSON
//! (compact or 2-space pretty, matching real serde_json's layout);
//! deserialization runs a recursive-descent parser with a nesting-depth
//! cap, full string-escape handling (including `\uXXXX` surrogate
//! pairs), and typed errors — hostile or truncated input can never
//! panic. Differences from the real crate: no zero-copy borrowing, no
//! arbitrary-precision numbers (u64/i64/f64 only, like serde_json's
//! default feature set), and map keys are limited to scalars.

use serde::{DeError, Deserialize, Serialize, Value};

/// Encode or decode failure (also wraps I/O errors from the reader- and
/// writer-based entry points, as the real crate's error does).
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Debug for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON float text: Rust's shortest round-trip `Display`, with `.0`
/// appended to integral values so floats stay floats on re-read (the
/// same shape ryu gives real serde_json). Non-finite values are a
/// serialization error, as in the real crate.
fn float_text(f: f64) -> Result<String, Error> {
    if !f.is_finite() {
        return Err(Error::new(format!("cannot serialize non-finite float {f}")));
    }
    let mut s = format!("{f}");
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    Ok(s)
}

fn emit(v: &Value, out: &mut String, pretty: bool, indent: usize) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&float_text(*f)?),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                emit(item, out, pretty, indent + 1)?;
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                emit(val, out, pretty, indent + 1)?;
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
    Ok(())
}

fn encode<T: ?Sized + Serialize>(value: &T, pretty: bool) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, pretty, 0)?;
    Ok(out)
}

pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    encode(value, false)
}

pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    encode(value, true)
}

pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn to_writer<W: std::io::Write, T: ?Sized + Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    writer.flush()?;
    Ok(())
}

pub fn to_writer_pretty<W: std::io::Write, T: ?Sized + Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    writer.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Deeper nesting than any sane document; recursion past this depth is a
/// parse error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated as UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
                // Integral but out of i64 range: fall through to f64 if
                // the digits are well-formed.
                if digits.is_empty() {
                    return Err(self.err("invalid number"));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected) into a [`Value`] tree.
fn parse_document(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let v = parse_document(s)?;
    Ok(T::from_value(&v)?)
}

pub fn from_slice<'a, T: Deserialize<'a>>(v: &'a [u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(v).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    let parsed = parse_document(s)?;
    Ok(T::from_value(&parsed)?)
}

pub fn from_reader<R: std::io::Read, T: for<'de> Deserialize<'de>>(
    mut reader: R,
) -> Result<T, Error> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}
