//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! non-poisoning API, backed by `std::sync`.

use std::ops::{Deref, DerefMut};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
