//! Offline stand-in for the subset of `proptest` 1.x this workspace
//! uses. Random generative testing without shrinking: each `proptest!`
//! test deterministically seeds a splitmix64 generator from its own
//! name, draws `cases` inputs from the strategies, and runs the body
//! with `prop_assert*` lowered to plain `assert*`. Failures therefore
//! report the failing values via the assertion message but are not
//! minimized.

/// Deterministic splitmix64 used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a of the test name: distinct tests see distinct streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    use super::TestRng;

    /// A value generator. Unlike real proptest there is no shrinking
    /// tree; `generate` just draws one value.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A/0);
    tuple_strategy!(A/0, B/1);
    tuple_strategy!(A/0, B/1, C/2);
    tuple_strategy!(A/0, B/1, C/2, D/3);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);

    /// `Just(v)`: always yields a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

pub mod test_runner {
    /// Case-count knob; `PROPTEST_CASES` overrides the default 256.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the rest of the current case when the assumption fails. Works
/// because `proptest!` runs each case body inside its own closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    // A closure so `return` inside a body ends only the
                    // current case, mirroring proptest's per-case scope.
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body })();
                    let _ = __case;
                }
            }
        )*
    };
}
