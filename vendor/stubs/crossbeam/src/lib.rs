//! Offline stand-in for `crossbeam::thread::scope`, backed by
//! `std::thread::scope` (available since Rust 1.63).

pub mod thread {
    use std::any::Any;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope handle; all threads spawned through it are
    /// joined before this returns. Unlike crossbeam, an unjoined panic
    /// propagates instead of surfacing in the returned `Result` — every
    /// caller in this workspace joins explicitly, so the difference is
    /// unobservable here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
