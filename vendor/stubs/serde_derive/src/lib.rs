//! Offline stand-in for `serde_derive` that generates real code.
//!
//! Unlike the original marker-impl stub, these derives emit working
//! `to_value`/`from_value` bodies against the vendored `serde` crate's
//! [`Value`] data model, covering every shape this workspace derives on:
//! named/tuple/unit structs, enums with unit, tuple, and struct
//! variants, simply-generic types (inline bounds, no `where` clauses),
//! and the `#[serde(default)]` field attribute. Other `#[serde(...)]`
//! attributes are rejected at compile time rather than silently ignored,
//! so a derive that would change meaning under real serde cannot slip
//! through.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ---------------------------------------------------------------------------
// Parsed shape of the derive input
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]`: fall back to `Default::default()` when the
    /// key is missing during deserialization.
    default: bool,
}

enum Fields {
    Unit,
    /// Tuple fields; only the count matters (types are inferred).
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ParamKind {
    Lifetime,
    Const,
    Type,
}

struct Param {
    kind: ParamKind,
    /// Bare name (`N`, `'a`) for the `for Name<...>` argument list.
    name: String,
    /// Full declaration with inline bounds (`N : Clone + Eq`).
    decl: String,
}

struct Input {
    name: String,
    params: Vec<Param>,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing (no syn in the offline container)
// ---------------------------------------------------------------------------

type Toks = Peekable<proc_macro::token_stream::IntoIter>;

/// Consume one `#[...]` attribute if present; returns Some(true) when it
/// was `#[serde(default)]`, panics on any other `#[serde(...)]` content.
fn eat_attr(toks: &mut Toks) -> Option<bool> {
    match toks.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return None,
    }
    toks.next();
    let group = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        other => panic!("serde_derive stub: malformed attribute near {other:?}"),
    };
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    g.stream().to_string()
                }
                other => panic!("serde_derive stub: malformed #[serde] attribute: {other:?}"),
            };
            if args.trim() == "default" {
                Some(true)
            } else {
                panic!(
                    "serde_derive stub: unsupported #[serde({args})] — only \
                     #[serde(default)] is implemented; other attributes would \
                     silently change meaning"
                );
            }
        }
        _ => Some(false),
    }
}

/// Consume every leading attribute; true if any was `#[serde(default)]`.
fn eat_attrs(toks: &mut Toks) -> bool {
    let mut default = false;
    while let Some(d) = eat_attr(toks) {
        default |= d;
    }
    default
}

/// Consume `pub` / `pub(...)` if present.
fn eat_vis(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(
            toks.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            toks.next();
        }
    }
}

/// Parse the generic parameter list after the type name, `<` peeked but
/// not yet consumed. Handles lifetimes, const params, and bounded type
/// params; `where` clauses are rejected later by the caller.
fn parse_generics(toks: &mut Toks) -> Vec<Param> {
    toks.next(); // consume `<`
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut segment: Vec<TokenTree> = Vec::new();
    for tt in toks.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    params.push(finish_param(&segment));
                    segment.clear();
                    continue;
                }
                _ => {}
            }
        }
        segment.push(tt);
    }
    if !segment.is_empty() {
        params.push(finish_param(&segment));
    }
    params
}

fn finish_param(segment: &[TokenTree]) -> Param {
    let decl: String = segment.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
    match segment.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            let name = format!("'{}", segment.get(1).map(|t| t.to_string()).unwrap_or_default());
            Param { kind: ParamKind::Lifetime, name, decl }
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            let name = segment.get(1).map(|t| t.to_string()).unwrap_or_default();
            Param { kind: ParamKind::Const, name, decl }
        }
        Some(TokenTree::Ident(id)) => Param { kind: ParamKind::Type, name: id.to_string(), decl },
        other => panic!("serde_derive stub: cannot parse generic parameter at {other:?}"),
    }
}

/// Parse named fields from the token stream of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = eat_attrs(&mut toks);
        eat_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field {name}, got {other:?}"),
        }
        // Skip the type: everything up to a comma outside angle brackets
        // (parens/brackets/braces arrive as single Group tokens, so only
        // angle-bracket nesting needs tracking).
        let mut angle = 0usize;
        for tt in toks.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Count tuple fields in the token stream of a paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    if toks.peek().is_none() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0usize;
    let mut saw_tokens_since_comma = false;
    for tt in toks {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    saw_tokens_since_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    // A trailing comma opens no new field.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}

/// Parse enum variants from the token stream of the enum's brace group.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        for tt in toks.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks: Toks = input.into_iter().peekable();
    // Skip outer attributes, visibility, and doc comments up to the item
    // keyword.
    let is_struct = loop {
        match toks.next() {
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "struct" => break true,
                "enum" => break false,
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde_derive stub: no struct/enum found"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    let params = match toks.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => parse_generics(&mut toks),
        _ => Vec::new(),
    };
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive stub: `where` clauses are not supported (type {name})");
    }
    let data = if is_struct {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => panic!("serde_derive stub: malformed struct {name} body: {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum {name} body: {other:?}"),
        }
    };
    Input { name, params, data }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

impl Input {
    /// `impl<...>` parameter list with `bound` appended to every type
    /// parameter, plus `extra` (the `'de` lifetime) prepended. Empty
    /// string when there is nothing to declare.
    fn impl_decl(&self, extra: &str, bound: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !extra.is_empty() {
            parts.push(extra.to_string());
        }
        for p in &self.params {
            match p.kind {
                ParamKind::Type => {
                    let sep = if p.decl.contains(':') { '+' } else { ':' };
                    parts.push(format!("{} {} {}", p.decl, sep, bound));
                }
                _ => parts.push(p.decl.clone()),
            }
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    /// `<A, B>` argument list for the `for Name<...>` position.
    fn type_args(&self) -> String {
        if self.params.is_empty() {
            String::new()
        } else {
            let names: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
            format!("<{}>", names.join(", "))
        }
    }
}

/// Expression serializing named fields, with `access` mapping a field
/// name to the expression that borrows it.
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                f.name,
                access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

/// Struct-literal body deserializing named fields out of map ident `m`;
/// `path` names the type/variant in error messages.
fn de_named(fields: &[Field], m: &str, path: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::core::default::Default::default()".to_string()
            } else {
                format!(
                    "return Err(::serde::DeError(\"missing field `{}` in {}\".to_string()))",
                    f.name, path
                )
            };
            format!(
                "{name}: match {m}.iter().find(|(__k, _)| __k.as_str() == {name:?}) {{ \
                   Some((_, __fv)) => ::serde::Deserialize::from_value(__fv)?, \
                   None => {missing}, \
                 }}",
                name = f.name,
            )
        })
        .collect();
    format!("{{ {} }}", inits.join(", "))
}

fn ser_body(input: &Input) -> String {
    match &input.data {
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Data::Struct(Fields::Named(fields)) => ser_named(fields, |name| format!("&self.{name}")),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "Self::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "Self::{vname}(__f0) => ::serde::Value::Map(vec![({vname:?}\
                             .to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Map(vec![({vname:?}\
                                 .to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = ser_named(fields, |name| name.to_string());
                            format!(
                                "Self::{vname} {{ {} }} => ::serde::Value::Map(vec![({vname:?}\
                                 .to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    }
}

fn de_body(input: &Input) -> String {
    let name = &input.name;
    match &input.data {
        Data::Struct(Fields::Unit) => format!(
            "match __v {{ ::serde::Value::Null => Ok(Self), \
             _ => Err(::serde::type_err(\"null for unit struct {name}\", __v)) }}"
        ),
        Data::Struct(Fields::Tuple(1)) => {
            "Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Seq(__s) if __s.len() == {n} => Ok(Self({items})), \
                   _ => Err(::serde::type_err(\"array of length {n} for {name}\", __v)) \
                 }}",
                items = items.join(", ")
            )
        }
        Data::Struct(Fields::Named(fields)) => {
            let body = de_named(fields, "__m", name);
            format!(
                "match __v {{ \
                   ::serde::Value::Map(__m) => Ok(Self {body}), \
                   _ => Err(::serde::type_err(\"object for struct {name}\", __v)) \
                 }}"
            )
        }
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => Ok(Self::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vname:?} => Ok(Self::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => match __inner {{ \
                                   ::serde::Value::Seq(__s) if __s.len() == {n} => \
                                     Ok(Self::{vname}({items})), \
                                   _ => Err(::serde::type_err(\
                                     \"array of length {n} for variant {vname}\", __inner)) \
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let body = de_named(fields, "__fm", &format!("{name}::{vname}"));
                            Some(format!(
                                "{vname:?} => match __inner {{ \
                                   ::serde::Value::Map(__fm) => Ok(Self::{vname} {body}), \
                                   _ => Err(::serde::type_err(\
                                     \"object for variant {vname}\", __inner)) \
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {unit} \
                     __other => Err(::serde::DeError(format!(\
                       \"unknown variant `{{__other}}` for enum {name}\"))), \
                   }}, \
                   ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                     let (__tag, __inner) = &__m[0]; \
                     match __tag.as_str() {{ \
                       {data} \
                       __other => Err(::serde::DeError(format!(\
                         \"unknown variant `{{__other}}` for enum {name}\"))), \
                     }} \
                   }} \
                   _ => Err(::serde::type_err(\"enum {name}\", __v)) \
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let decl = parsed.impl_decl("", "::serde::Serialize");
    let args = parsed.type_args();
    let name = &parsed.name;
    let body = ser_body(&parsed);
    format!(
        "#[automatically_derived] \
         impl{decl} ::serde::Serialize for {name}{args} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let decl = parsed.impl_decl("'de", "::serde::Deserialize<'de>");
    let args = parsed.type_args();
    let name = &parsed.name;
    let body = de_body(&parsed);
    format!(
        "#[automatically_derived] \
         impl{decl} ::serde::Deserialize<'de> for {name}{args} {{ \
           fn from_value(__v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
    .parse()
    .unwrap()
}
