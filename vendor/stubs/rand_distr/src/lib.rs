//! Offline stand-in for the subset of `rand_distr` 0.4 this workspace
//! uses: `LogNormal`, `StandardNormal`, and the `Distribution` trait.

use rand::{Generable, Rng};

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Box–Muller standard normal from two uniforms.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u1 = f64::generate(rng);
    if u1 <= f64::MIN_POSITIVE {
        u1 = f64::MIN_POSITIVE;
    }
    let u2 = f64::generate(rng);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[derive(Debug, Clone, Copy)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        std_normal(rng)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if mu.is_finite() && sigma.is_finite() && sigma >= 0.0 {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * std_normal(rng)).exp()
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if mu.is_finite() && sigma.is_finite() && sigma >= 0.0 {
            Ok(Normal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * std_normal(rng)
    }
}
