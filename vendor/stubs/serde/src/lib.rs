//! Offline stand-in for `serde` with a real (if miniature) data model.
//!
//! The real crate threads values through `Serializer`/`Deserializer`
//! visitors; this stand-in materializes a [`Value`] tree instead. The
//! derive macros (see the vendored `serde_derive`) generate genuine
//! per-field code against these traits, and the vendored `serde_json`
//! encodes/decodes the tree with the same JSON shapes real serde_json
//! produces for the forms this workspace uses:
//!
//! * named struct → object, newtype struct → inner value,
//!   tuple struct → array, unit struct → null
//! * unit enum variant → `"Name"`; data variants → `{"Name": ...}`
//!   (newtype payload inline, tuple payload as array, struct payload
//!   as object) — serde's default externally-tagged representation
//! * `Option`: `None` → null, `Some(v)` → v
//! * maps → objects with stringified keys (entries emitted in sorted
//!   key order so `HashMap` output is deterministic)
//! * `#[serde(default)]` fields fall back to `Default::default()` when
//!   the key is missing
//!
//! Not implemented: borrowed (zero-copy) deserialization, rename/skip/
//! flatten attributes, `deny_unknown_fields` (unknown keys are ignored,
//! matching serde's default), and non-externally-tagged enum reprs —
//! none of which this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory serialization tree (a superset of JSON scalars: signed,
/// unsigned, and float numbers are kept distinct so integer round-trips
/// are exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short noun for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Look up `key` in a map value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Typed deserialization error (also wrapped by the vendored
/// `serde_json`'s error type).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Build a `DeError` for an unexpected value shape.
pub fn type_err(expected: &str, got: &Value) -> DeError {
    DeError(format!("expected {expected}, got {}", got.kind()))
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(type_err("unsigned integer", v)),
                };
                <$t>::try_from(u)
                    .map_err(|_| DeError(format!("{} out of range for {}", u, stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => {
                        i64::try_from(u).map_err(|_| DeError(format!("{u} overflows i64")))?
                    }
                    _ => return Err(type_err("integer", v)),
                };
                <$t>::try_from(i)
                    .map_err(|_| DeError(format!("{} out of range for {}", i, stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    _ => Err(type_err("number", v)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_err("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError(format!("expected single-char string, got {s:?}"))),
                }
            }
            _ => Err(type_err("string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(type_err("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Forwarding and containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (hash iteration order is not).
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}
impl<'de, T: Deserialize<'de> + Eq + std::hash::Hash> Deserialize<'de>
    for std::collections::HashSet<T>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(s) if s.len() == $len => {
                        Ok(($($t::from_value(&s[$idx])?,)+))
                    }
                    Value::Seq(s) => Err(DeError(format!(
                        "expected {}-tuple, got array of length {}", $len, s.len()
                    ))),
                    _ => Err(type_err("array", v)),
                }
            }
        }
    )+};
}
impl_tuple! {
    (A.0 ; 1)
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
    (A.0, B.1, C.2, D.3, E.4 ; 5)
    (A.0, B.1, C.2, D.3, E.4, F.5 ; 6)
}

// ---------------------------------------------------------------------------
// Maps: JSON objects require string keys, so scalar keys are stringified
// on the way out and re-parsed on the way in (what real serde_json does
// for integer map keys). HashMap entries are emitted in sorted key order
// so serialization is deterministic.
// ---------------------------------------------------------------------------

fn key_to_string(k: Value) -> String {
    match k {
        Value::Str(s) => s,
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map keys must serialize to a scalar, got {}", other.kind()),
    }
}

/// Deserialize a map key from its JSON-object string form: try the
/// string directly, then a numeric re-parse (integer keys arrive as
/// `"42"`).
fn key_from_string<'de, K: Deserialize<'de>>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        return K::from_value(&Value::UInt(u));
    }
    if let Ok(i) = s.parse::<i64>() {
        return K::from_value(&Value::Int(i));
    }
    if let Ok(b) = s.parse::<bool>() {
        return K::from_value(&Value::Bool(b));
    }
    Err(DeError(format!("cannot deserialize map key from {s:?}")))
}

fn map_to_value<'a, K, V, I>(iter: I, sort: bool) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut entries: Vec<(String, Value)> =
        iter.map(|(k, v)| (key_to_string(k.to_value()), v.to_value())).collect();
    if sort {
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    }
    Value::Map(entries)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(type_err("object", v)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), true)
    }
}
impl<'de, K: Deserialize<'de> + Eq + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(type_err("object", v)),
        }
    }
}
