//! Deterministic-seed snapshot test: a small end-to-end run must
//! produce exactly the `SystemMetrics` pinned in the committed golden
//! JSON. Catches any unintended behaviour change anywhere in the
//! pipeline (scheduler, routing, caching, fault handling).
//!
//! After an *intentional* behaviour change, regenerate with
//! `cargo test --test metrics_snapshot -- --ignored` and commit the
//! refreshed fixture with the change that explains it.

use spacegen::trace::{LocationId, Request, Trace};
use starcdn::config::StarCdnConfig;
use starcdn::metrics::SystemMetrics;
use starcdn::system::SpaceCdn;
use starcdn_cache::object::ObjectId;
use starcdn_constellation::schedule::{FaultEvent, FaultSchedule, TimedFault};
use starcdn_orbit::time::SimTime;
use starcdn_orbit::walker::SatelliteId;
use starcdn_sim::engine::{run_space_with_faults, SimConfig};
use starcdn_sim::{build_access_log, World};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/metrics_snapshot.json");
const FIXTURE_DELAYED: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/metrics_snapshot_delayed.json");

/// The pinned scenario: an arithmetic (RNG-free) 20-minute trace over
/// all nine cities, one satellite restart mid-run, StarCDN without
/// relay so the engine is bit-deterministic.
fn run_pinned_scenario() -> SystemMetrics {
    let world = World::starlink_nine_cities();
    let reqs: Vec<Request> = (0..4000u64)
        .map(|k| Request {
            time: SimTime::from_secs((k * 1200) / 4000),
            object: ObjectId((k * 7919) % 300),
            size: 400 + (k % 7) * 150,
            location: LocationId((k % 9) as u16),
        })
        .collect();
    let sim = SimConfig { seed: 13, ..SimConfig::default() };
    let log = build_access_log(&world, &Trace::new(reqs), sim.epoch_secs, &sim.scheduler());
    // Restart the three busiest satellites mid-run (found by a
    // deterministic probe run) so the snapshot pins the remap,
    // cold-restart, and availability paths, not just the happy path.
    let busy: Vec<SatelliteId> = {
        let mut probe = SpaceCdn::new(StarCdnConfig::starcdn_no_relay(4, 100_000));
        starcdn_sim::run_space(&mut probe, &log);
        let mut sats: Vec<(SatelliteId, u64)> =
            probe.metrics.per_satellite.iter().map(|(s, st)| (*s, st.requests)).collect();
        sats.sort_by_key(|&(s, r)| (std::cmp::Reverse(r), s));
        sats.into_iter().take(3).map(|(s, _)| s).collect()
    };
    let mut events = Vec::new();
    for (i, &s) in busy.iter().enumerate() {
        events.push(TimedFault { at_secs: 300 + 15 * i as u64, event: FaultEvent::SatDown(s) });
        events.push(TimedFault { at_secs: 600 + 15 * i as u64, event: FaultEvent::SatUp(s) });
    }
    let schedule = FaultSchedule::from_events(events);
    let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn_no_relay(4, 100_000));
    run_space_with_faults(&mut cdn, &log, &schedule)
}

/// Reduce metrics to a stable JSON document: integer fields verbatim,
/// the latency median rounded to 3 decimals, per-satellite counts in
/// `BTreeMap` (= satellite id) order.
fn snapshot_json(m: &SystemMetrics) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"requests\": {},", m.stats.requests);
    let _ = writeln!(out, "  \"hits\": {},", m.stats.hits);
    let _ = writeln!(out, "  \"bytes_requested\": {},", m.stats.bytes_requested);
    let _ = writeln!(out, "  \"bytes_hit\": {},", m.stats.bytes_hit);
    let _ = writeln!(out, "  \"uplink_bytes\": {},", m.uplink_bytes);
    let _ = writeln!(out, "  \"served_local\": {},", m.served_local);
    let _ = writeln!(out, "  \"served_relay_west\": {},", m.served_relay_west);
    let _ = writeln!(out, "  \"served_relay_east\": {},", m.served_relay_east);
    let _ = writeln!(out, "  \"served_ground\": {},", m.served_ground);
    let _ = writeln!(out, "  \"remapped_requests\": {},", m.remapped_requests);
    let _ = writeln!(out, "  \"reroute_extra_hops\": {},", m.reroute_extra_hops);
    let _ = writeln!(out, "  \"cold_restart_misses\": {},", m.cold_restart_misses);
    let _ = writeln!(out, "  \"availability_points\": {},", m.availability.len());
    let median = m.latency_cdf().quantile(0.5).unwrap_or(0.0);
    let _ = writeln!(out, "  \"latency_median_ms\": {:.3},", median);
    out.push_str("  \"per_satellite\": {\n");
    let ordered: BTreeMap<SatelliteId, _> =
        m.per_satellite.iter().map(|(s, st)| (*s, st)).collect();
    let n = ordered.len();
    for (i, (sat, st)) in ordered.into_iter().enumerate() {
        let _ =
            write!(out, "    \"{sat}\": {{\"requests\": {}, \"hits\": {}}}", st.requests, st.hits);
        out.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// The delayed-hit pinned scenario: a single-city trace (stable owner
/// per epoch, so requests coalesce onto in-flight fetches), the
/// delayed-hit model on with heterogeneous origin tiers, and one
/// mid-run restart of the busiest satellite so the snapshot pins the
/// queue-clearing cold-restart path too.
fn run_pinned_delayed_scenario() -> SystemMetrics {
    use starcdn::config::DelayedHitConfig;
    let world = World::starlink_nine_cities();
    let reqs: Vec<Request> = (0..4000u64)
        .map(|k| Request {
            time: SimTime::from_secs((k * 1200) / 4000),
            object: ObjectId((k * 7919) % 60),
            size: 400 + (k % 7) * 150,
            location: LocationId(0),
        })
        .collect();
    let sim = SimConfig { seed: 13, ..SimConfig::default() };
    let log = build_access_log(&world, &Trace::new(reqs), sim.epoch_secs, &sim.scheduler());
    let cfg = StarCdnConfig::starcdn_no_relay(4, 20_000)
        .with_delayed_hits(DelayedHitConfig::with_latency(2, 40.0).with_origin_tiers(3));
    let busy: SatelliteId = {
        let mut probe = SpaceCdn::new(cfg.clone());
        starcdn_sim::run_space(&mut probe, &log);
        let mut sats: Vec<(SatelliteId, u64)> =
            probe.metrics.per_satellite.iter().map(|(s, st)| (*s, st.requests)).collect();
        sats.sort_by_key(|&(s, r)| (std::cmp::Reverse(r), s));
        sats[0].0
    };
    let schedule = FaultSchedule::from_events([
        TimedFault { at_secs: 300, event: FaultEvent::SatDown(busy) },
        TimedFault { at_secs: 600, event: FaultEvent::SatUp(busy) },
    ]);
    let mut cdn = SpaceCdn::new(cfg);
    run_space_with_faults(&mut cdn, &log, &schedule)
}

/// The delayed scenario's snapshot: the plain document plus the
/// delayed-hit counters and the full residual-latency histogram.
fn snapshot_delayed_json(m: &SystemMetrics) -> String {
    let mut out = snapshot_json(m);
    // Splice the delayed section in before the closing document brace.
    out.truncate(out.trim_end().len() - 1); // drop the final '}'
    out.truncate(out.trim_end().len()); // back up to per_satellite's '}'
    out.push_str(",\n");
    let _ = writeln!(out, "  \"delayed_hits\": {},", m.delayed_hits);
    let _ = writeln!(out, "  \"coalesced_requests\": {},", m.coalesced_requests);
    out.push_str("  \"residual_epoch_hist\": {\n");
    let n = m.residual_epoch_hist.len();
    for (i, (residual, count)) in m.residual_epoch_hist.iter().enumerate() {
        let _ = write!(out, "    \"{residual}\": {count}");
        out.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// One-time fixture generator; run with `-- --ignored` after an
/// intentional behaviour change.
#[test]
#[ignore]
fn regenerate_metrics_snapshot() {
    std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
    std::fs::write(FIXTURE, snapshot_json(&run_pinned_scenario())).unwrap();
    std::fs::write(FIXTURE_DELAYED, snapshot_delayed_json(&run_pinned_delayed_scenario())).unwrap();
}

#[test]
fn pinned_scenario_matches_committed_snapshot() {
    let golden = std::fs::read_to_string(FIXTURE).expect("committed fixture present");
    let actual = snapshot_json(&run_pinned_scenario());
    assert_eq!(
        actual, golden,
        "end-to-end metrics drifted from the committed snapshot; if the \
         behaviour change is intentional, regenerate the fixture"
    );
}

#[test]
fn pinned_scenario_is_run_to_run_deterministic() {
    assert_eq!(snapshot_json(&run_pinned_scenario()), snapshot_json(&run_pinned_scenario()));
}

#[test]
fn pinned_delayed_scenario_matches_committed_snapshot() {
    let golden = std::fs::read_to_string(FIXTURE_DELAYED).expect("committed fixture present");
    let actual = snapshot_delayed_json(&run_pinned_delayed_scenario());
    // The scenario must actually exercise the machinery it pins.
    assert!(actual.contains("\"delayed_hits\": ") && !actual.contains("\"delayed_hits\": 0,"));
    assert_eq!(
        actual, golden,
        "delayed-hit metrics drifted from the committed snapshot; if the \
         behaviour change is intentional, regenerate the fixture"
    );
}

#[test]
fn pinned_delayed_scenario_is_run_to_run_deterministic() {
    assert_eq!(
        snapshot_delayed_json(&run_pinned_delayed_scenario()),
        snapshot_delayed_json(&run_pinned_delayed_scenario())
    );
}
