//! Integration: crash-consistent checkpoint/resume (DESIGN.md §11).
//!
//! A "crash" is simulated by running the checkpointed engine over only
//! the log prefix that precedes a kill epoch — exactly the state a
//! SIGKILL at that epoch leaves on disk, since checkpoints are written
//! atomically at epoch boundaries and nothing later is durable — then
//! resuming over the full log. The resumed run must be bit-for-bit
//! identical (metrics, latency bit patterns, telemetry) to a golden
//! uninterrupted run, across all three engine fault modes and the
//! parallel replayer at 1/4/8 workers, with kill epochs drawn from a
//! seeded generator. Torn and garbage checkpoint files must be skipped
//! via fallback without ever panicking.

use spacegen::trace::{LocationId, Request, Trace};
use starcdn::config::StarCdnConfig;
use starcdn::metrics::SystemMetrics;
use starcdn::system::SpaceCdn;
use starcdn_cache::object::ObjectId;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::schedule::{FaultEvent, FaultSchedule, SolarStormParams, TimedFault};
use starcdn_orbit::time::SimTime;
use starcdn_orbit::walker::SatelliteId;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::{
    build_access_log, list_checkpoint_files, replay_parallel_checkpointed,
    resume_replay_checkpointed, resume_space_checkpointed, run_space_checkpointed,
    validate_checkpoint_bytes, AccessLog, CheckpointError, CheckpointPolicy, OverloadConfig, World,
};
use starcdn_telemetry::{Event, MemoryRecorder, TelemetrySnapshot};
use std::path::{Path, PathBuf};

const EPOCH_SECS: u64 = 15;

fn log() -> AccessLog {
    let w = World::starlink_nine_cities();
    let reqs: Vec<Request> = (0..4000u64)
        .map(|k| Request {
            time: SimTime::from_secs(k / 4),
            object: ObjectId((k * 7) % 80),
            size: 1000 + (k % 5) * 300,
            location: LocationId((k % 9) as u16),
        })
        .collect();
    build_access_log(&w, &Trace::new(reqs), EPOCH_SECS, &SimConfig::default().scheduler())
}

fn churn() -> FaultSchedule {
    FaultSchedule::from_events([
        TimedFault { at_secs: 120, event: FaultEvent::SatDown(SatelliteId::new(3, 7)) },
        TimedFault { at_secs: 150, event: FaultEvent::SatDown(SatelliteId::new(10, 2)) },
        TimedFault { at_secs: 450, event: FaultEvent::SatUp(SatelliteId::new(3, 7)) },
        TimedFault { at_secs: 600, event: FaultEvent::SatUp(SatelliteId::new(10, 2)) },
    ])
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("starcdn-crashrec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn policy(dir: &Path, every: u64) -> CheckpointPolicy {
    CheckpointPolicy { every_n_epochs: every, dir: dir.to_path_buf(), keep_last: 0 }
}

/// Truncate the log to everything strictly before `kill_epoch` — the
/// requests a process killed at that epoch would have replayed.
fn prefix_before(log: &AccessLog, kill_epoch: u64) -> AccessLog {
    let cut = log
        .entries
        .iter()
        .position(|e| e.time.as_secs() / log.epoch_secs >= kill_epoch)
        .unwrap_or(log.entries.len());
    AccessLog { entries: log.entries[..cut].to_vec(), epoch_secs: log.epoch_secs }
}

/// Deterministic kill epochs: a seeded xorshift draw over the run's
/// epoch range, so different epochs (early, mid, late, off-boundary)
/// are exercised without any test-order dependence.
fn kill_epochs(seed: u64, max_epoch: u64, n: usize) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            1 + s % max_epoch.max(2)
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_metrics_identical(a: &SystemMetrics, b: &SystemMetrics) {
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.uplink_bytes, b.uplink_bytes);
    assert_eq!(a.served_local, b.served_local);
    assert_eq!(a.served_relay_west, b.served_relay_west);
    assert_eq!(a.served_relay_east, b.served_relay_east);
    assert_eq!(a.served_ground, b.served_ground);
    assert_eq!(a.relay_bytes, b.relay_bytes);
    assert_eq!(bits(&a.latencies_ms), bits(&b.latencies_ms), "latency bit patterns");
    assert_eq!(a.per_satellite, b.per_satellite);
    assert_eq!(a.remapped_requests, b.remapped_requests);
    assert_eq!(a.cold_restart_misses, b.cold_restart_misses);
    assert_eq!(a.reroute_extra_hops, b.reroute_extra_hops);
    assert_eq!(a.availability, b.availability);
    assert_eq!(a.shed_requests, b.shed_requests);
    assert_eq!(a.retry_attempts, b.retry_attempts);
    assert_eq!(a.served_primary, b.served_primary);
    assert_eq!(a.served_replica, b.served_replica);
    assert_eq!(a.served_origin_fallback, b.served_origin_fallback);
    assert_eq!(a.dropped_requests, b.dropped_requests);
    assert_eq!(a.partitioned_requests, b.partitioned_requests);
    assert_eq!(a.delayed_hits, b.delayed_hits);
    assert_eq!(a.coalesced_requests, b.coalesced_requests);
    assert_eq!(a.residual_epoch_hist, b.residual_epoch_hist);
}

/// Telemetry equality modulo span wall-clock durations and the
/// recovery-path fallback event (which by construction only the
/// resumed side carries).
fn assert_telemetry_identical(a: &TelemetrySnapshot, b: &TelemetrySnapshot) {
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.histograms, b.histograms);
    let events = |s: &TelemetrySnapshot| {
        s.events
            .iter()
            .filter(|((e, _), _)| *e != Event::CheckpointRestoreFallback)
            .map(|(&k, &v)| (k, v))
            .collect::<Vec<_>>()
    };
    assert_eq!(events(a), events(b));
    let span_counts =
        |s: &TelemetrySnapshot| s.spans.iter().map(|(&k, v)| (k, v.count)).collect::<Vec<_>>();
    assert_eq!(span_counts(a), span_counts(b));
}

fn fresh_cdn() -> SpaceCdn {
    SpaceCdn::new(StarCdnConfig::starcdn(4, 2_000_000))
}

/// Kill-and-resume sweep for one engine fault mode: for each seeded
/// kill epoch, crash (replay only the pre-kill prefix into a fresh
/// checkpoint dir) then resume over the full log and demand
/// bit-equality with the golden uninterrupted run.
fn engine_kill_sweep(name: &str, sched: &FaultSchedule, overload: &OverloadConfig, seed: u64) {
    let log = log();
    let max_epoch = log.entries.last().unwrap().time.as_secs() / EPOCH_SECS;

    let gold_dir = tmpdir(&format!("{name}-gold"));
    let gold_rec = MemoryRecorder::new();
    let golden = run_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        sched,
        overload,
        &policy(&gold_dir, 7),
        &gold_rec,
    )
    .unwrap();

    for (i, kill) in kill_epochs(seed, max_epoch, 3).into_iter().enumerate() {
        let dir = tmpdir(&format!("{name}-kill{i}"));
        let pol = policy(&dir, 7);
        // Crash: the killed process got through the prefix only.
        run_space_checkpointed(
            &mut fresh_cdn(),
            &prefix_before(&log, kill),
            sched,
            overload,
            &pol,
            &MemoryRecorder::new(),
        )
        .unwrap();
        // Resume over the full log. A kill before the first barrier
        // leaves no checkpoint at all: resume reports that, and the
        // operator path is a fresh checkpointed run.
        let rec = MemoryRecorder::new();
        let resumed = if list_checkpoint_files(&dir).is_empty() {
            let err =
                resume_space_checkpointed(&mut fresh_cdn(), &log, sched, overload, &pol, &rec)
                    .unwrap_err();
            assert!(matches!(err, CheckpointError::NoValidCheckpoint), "got {err:?}");
            run_space_checkpointed(&mut fresh_cdn(), &log, sched, overload, &pol, &rec).unwrap()
        } else {
            resume_space_checkpointed(&mut fresh_cdn(), &log, sched, overload, &pol, &rec).unwrap()
        };
        assert_metrics_identical(&golden, &resumed);
        assert_telemetry_identical(&gold_rec.snapshot(), &rec.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn engine_kill_resume_bit_identical_plain() {
    engine_kill_sweep("plain", &FaultSchedule::empty(), &OverloadConfig::disabled(), 0x5EED_0001);
}

#[test]
fn engine_kill_resume_bit_identical_churn() {
    engine_kill_sweep("churn", &churn(), &OverloadConfig::disabled(), 0x5EED_0002);
}

#[test]
fn engine_kill_resume_bit_identical_churn_overload() {
    engine_kill_sweep("churn-ov", &churn(), &OverloadConfig::with_headroom(0.4), 0x5EED_0003);
}

#[test]
fn engine_kill_resume_bit_identical_mid_solar_storm() {
    // A SIGKILL landing *inside* a solar storm, between the mass
    // knockout and the end of the staged recovery: resume must rebuild
    // the schedule cursor mid-dip — satellites down, recoveries still
    // pending — and replay the rest of the storm to bit-equality with
    // the golden uninterrupted run.
    let log = log();
    let grid = World::starlink_nine_cities().grid;
    let storm = SolarStormParams {
        center_plane: 30,
        plane_halfwidth: 5,
        kill_prob: 0.85,
        onset_secs: 300,
        onset_jitter_secs: 30,
        recovery_start_secs: 600,
        recovery_spread_secs: 300,
        seed: 77,
    };
    let sched = FaultSchedule::solar_storm(&grid, &storm);
    let overload = OverloadConfig::with_headroom(0.4);

    let gold_dir = tmpdir("storm-gold");
    let gold_rec = MemoryRecorder::new();
    let golden = run_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &sched,
        &overload,
        &policy(&gold_dir, 7),
        &gold_rec,
    )
    .unwrap();
    // The storm really happened: the availability timeline dips.
    let slos = golden.recovery_slos();
    assert_eq!(slos.len(), 1, "one storm, one dip");
    assert!(slos[0].dip_depth > 0, "the storm must knock satellites out");

    // Kill epochs pinned inside the disturbed window (onset at epoch 20,
    // last staged recovery by epoch 60): just after the knockout, at
    // the trough, and during the staged recovery.
    let first_down = sched.events().first().unwrap().at_secs / EPOCH_SECS;
    let last_up = sched.last_event_secs().unwrap() / EPOCH_SECS;
    for (i, kill) in
        [first_down + 2, (first_down + last_up) / 2, last_up - 2].into_iter().enumerate()
    {
        assert!(kill > first_down && kill < last_up, "kill epoch {kill} must be mid-storm");
        let dir = tmpdir(&format!("storm-kill{i}"));
        let pol = policy(&dir, 7);
        run_space_checkpointed(
            &mut fresh_cdn(),
            &prefix_before(&log, kill),
            &sched,
            &overload,
            &pol,
            &MemoryRecorder::new(),
        )
        .unwrap();
        let rec = MemoryRecorder::new();
        let resumed =
            resume_space_checkpointed(&mut fresh_cdn(), &log, &sched, &overload, &pol, &rec)
                .unwrap();
        assert_metrics_identical(&golden, &resumed);
        assert_telemetry_identical(&gold_rec.snapshot(), &rec.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&gold_dir);
}

/// Single-city trace for the delayed-hit kill sweeps: same-epoch
/// repeats land on one stable owner and coalesce onto in-flight
/// fetches, so the outstanding queues are live at the kill points.
fn delayed_log() -> AccessLog {
    let w = World::starlink_nine_cities();
    let reqs: Vec<Request> = (0..4000u64)
        .map(|k| Request {
            time: SimTime::from_secs(k / 6),
            object: ObjectId((k * 7919) % 60),
            size: 500 + (k % 5) * 100,
            location: LocationId(0),
        })
        .collect();
    build_access_log(&w, &Trace::new(reqs), EPOCH_SECS, &SimConfig::default().scheduler())
}

fn delayed_cfg() -> StarCdnConfig {
    use starcdn::config::DelayedHitConfig;
    StarCdnConfig::starcdn_no_relay(4, 20_000)
        .with_delayed_hits(DelayedHitConfig::with_latency(2, 40.0).with_origin_tiers(3))
}

#[test]
fn engine_kill_resume_bit_identical_with_fetches_in_flight() {
    // A SIGKILL while origin fetches are outstanding: the per-object
    // queues travel in the checkpoint body (checkpointing every epoch,
    // so the restore point always carries whatever was in flight), and
    // the resumed run must retire exactly the fetches the killed
    // process had registered — bit-equality on the delayed counters,
    // the residual histogram, and every latency sample.
    let log = delayed_log();
    let cfg = delayed_cfg();
    let sched = churn();
    let overload = OverloadConfig::disabled();
    let max_epoch = log.entries.last().unwrap().time.as_secs() / EPOCH_SECS;

    let gold_dir = tmpdir("delayed-gold");
    let gold_rec = MemoryRecorder::new();
    let golden = run_space_checkpointed(
        &mut SpaceCdn::new(cfg.clone()),
        &log,
        &sched,
        &overload,
        &policy(&gold_dir, 1),
        &gold_rec,
    )
    .unwrap();
    assert!(golden.delayed_hits > 0, "trace must exercise coalescing");
    assert!(golden.coalesced_requests > 0, "fetches must retire followers");

    for (i, kill) in kill_epochs(0x5EED_0D07, max_epoch, 3).into_iter().enumerate() {
        let dir = tmpdir(&format!("delayed-kill{i}"));
        let pol = policy(&dir, 1);
        let mut crashed = SpaceCdn::new(cfg.clone());
        run_space_checkpointed(
            &mut crashed,
            &prefix_before(&log, kill),
            &sched,
            &overload,
            &pol,
            &MemoryRecorder::new(),
        )
        .unwrap();
        // The kill must actually strand fetches: the crashed process's
        // final state — which equals the newest checkpoint's, since one
        // is written every epoch — has a nonempty outstanding queue.
        let stranded: usize = crashed.export_state().inflight.iter().map(|q| q.fetches.len()).sum();
        assert!(stranded > 0, "kill epoch {kill} left no fetch in flight — weak scenario");

        let rec = MemoryRecorder::new();
        let resumed = if list_checkpoint_files(&dir).is_empty() {
            run_space_checkpointed(
                &mut SpaceCdn::new(cfg.clone()),
                &log,
                &sched,
                &overload,
                &pol,
                &rec,
            )
            .unwrap()
        } else {
            resume_space_checkpointed(
                &mut SpaceCdn::new(cfg.clone()),
                &log,
                &sched,
                &overload,
                &pol,
                &rec,
            )
            .unwrap()
        };
        assert_metrics_identical(&golden, &resumed);
        assert_telemetry_identical(&gold_rec.snapshot(), &rec.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn replayer_kill_resume_bit_identical_with_fetches_in_flight() {
    // The same stranded-fetch crash through the parallel replayer: the
    // queues are snapshotted at shard cuts, so resume at any worker
    // count must agree with the golden uninterrupted run bit-for-bit.
    let log = delayed_log();
    let cfg = delayed_cfg();
    let sched = churn();
    let overload = OverloadConfig::with_headroom(0.4);
    let max_epoch = log.entries.last().unwrap().time.as_secs() / EPOCH_SECS;

    for workers in [1usize, 4, 8] {
        let gold_dir = tmpdir(&format!("delayed-rep-gold-{workers}"));
        let gold_rec = MemoryRecorder::new();
        let golden = replay_parallel_checkpointed(
            cfg.clone(),
            FailureModel::none(),
            &log,
            &sched,
            workers,
            &overload,
            &policy(&gold_dir, 3),
            &gold_rec,
        )
        .unwrap();
        assert!(golden.delayed_hits > 0, "{workers} workers: trace must exercise coalescing");

        for (i, kill) in
            kill_epochs(0x5EED_0D00 + workers as u64, max_epoch, 2).into_iter().enumerate()
        {
            let dir = tmpdir(&format!("delayed-rep-kill-{workers}-{i}"));
            let pol = policy(&dir, 3);
            replay_parallel_checkpointed(
                cfg.clone(),
                FailureModel::none(),
                &prefix_before(&log, kill),
                &sched,
                workers,
                &overload,
                &pol,
                &MemoryRecorder::new(),
            )
            .unwrap();
            let rec = MemoryRecorder::new();
            let resumed = if list_checkpoint_files(&dir).is_empty() {
                replay_parallel_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &overload,
                    &pol,
                    &rec,
                )
                .unwrap()
            } else {
                resume_replay_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &overload,
                    &pol,
                    &rec,
                )
                .unwrap()
            };
            assert_metrics_identical(&golden, &resumed);
            assert_telemetry_identical(&gold_rec.snapshot(), &rec.snapshot());
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&gold_dir);
    }
}

#[test]
fn replayer_kill_resume_bit_identical_at_1_4_8_workers() {
    let log = log();
    let sched = churn();
    let overload = OverloadConfig::with_headroom(0.4);
    let cfg = StarCdnConfig::starcdn_no_relay(4, 2_000_000);
    let max_epoch = log.entries.last().unwrap().time.as_secs() / EPOCH_SECS;

    for workers in [1usize, 4, 8] {
        let gold_dir = tmpdir(&format!("rep-gold-{workers}"));
        let gold_rec = MemoryRecorder::new();
        let golden = replay_parallel_checkpointed(
            cfg.clone(),
            FailureModel::none(),
            &log,
            &sched,
            workers,
            &overload,
            &policy(&gold_dir, 7),
            &gold_rec,
        )
        .unwrap();

        for (i, kill) in
            kill_epochs(0x5EED_0100 + workers as u64, max_epoch, 2).into_iter().enumerate()
        {
            let dir = tmpdir(&format!("rep-kill-{workers}-{i}"));
            let pol = policy(&dir, 7);
            replay_parallel_checkpointed(
                cfg.clone(),
                FailureModel::none(),
                &prefix_before(&log, kill),
                &sched,
                workers,
                &overload,
                &pol,
                &MemoryRecorder::new(),
            )
            .unwrap();
            let rec = MemoryRecorder::new();
            let resumed = if list_checkpoint_files(&dir).is_empty() {
                let err = resume_replay_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &overload,
                    &pol,
                    &rec,
                )
                .unwrap_err();
                assert!(matches!(err, CheckpointError::NoValidCheckpoint), "got {err:?}");
                replay_parallel_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &overload,
                    &pol,
                    &rec,
                )
                .unwrap()
            } else {
                resume_replay_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &overload,
                    &pol,
                    &rec,
                )
                .unwrap()
            };
            assert_metrics_identical(&golden, &resumed);
            assert_telemetry_identical(&gold_rec.snapshot(), &rec.snapshot());
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&gold_dir);
    }
}

#[test]
fn torn_checkpoint_is_skipped_and_resume_still_exact() {
    // A kill arriving mid-write tears the newest checkpoint in half and
    // strands a temp file; resume must fall back to the previous intact
    // checkpoint, flag the fallback, and still reproduce the golden run.
    let log = log();
    let sched = churn();
    let overload = OverloadConfig::with_headroom(0.4);

    let gold_dir = tmpdir("torn-gold");
    let gold_rec = MemoryRecorder::new();
    let golden = run_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &sched,
        &overload,
        &policy(&gold_dir, 5),
        &gold_rec,
    )
    .unwrap();

    let dir = tmpdir("torn");
    let pol = policy(&dir, 5);
    run_space_checkpointed(
        &mut fresh_cdn(),
        &prefix_before(&log, 40),
        &sched,
        &overload,
        &pol,
        &MemoryRecorder::new(),
    )
    .unwrap();
    let files = list_checkpoint_files(&dir);
    assert!(files.len() >= 2, "need at least two checkpoints for fallback");
    let (_, newest) = files.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(dir.join("ckpt-9999999999.ckpt.tmp"), b"torn mid write").unwrap();

    let rec = MemoryRecorder::new();
    let resumed =
        resume_space_checkpointed(&mut fresh_cdn(), &log, &sched, &overload, &pol, &rec).unwrap();
    assert_metrics_identical(&golden, &resumed);
    assert_telemetry_identical(&gold_rec.snapshot(), &rec.snapshot());
    let fallbacks: u64 = rec
        .snapshot()
        .events
        .iter()
        .filter(|((e, _), _)| *e == Event::CheckpointRestoreFallback)
        .map(|(_, &c)| c)
        .sum();
    assert!(fallbacks >= 1, "the torn newest checkpoint must be counted as skipped");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn garbage_checkpoint_files_never_panic() {
    // A directory full of adversarial junk: resume must either fall
    // back to a valid checkpoint or report NoValidCheckpoint — never
    // panic, never return garbage metrics.
    let log = log();
    let dir = tmpdir("garbage");
    let pol = policy(&dir, 5);

    let mut s = 0x0BAD_F00Du64;
    for i in 0..4u64 {
        let n = 64 + (i as usize) * 137;
        let junk: Vec<u8> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s as u8
            })
            .collect();
        assert!(validate_checkpoint_bytes(&junk).is_err(), "junk must not validate");
        std::fs::write(dir.join(format!("ckpt-{:010}.ckpt", i * 5)), &junk).unwrap();
    }

    let err = resume_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &FaultSchedule::empty(),
        &OverloadConfig::disabled(),
        &pol,
        &MemoryRecorder::new(),
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::NoValidCheckpoint), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
