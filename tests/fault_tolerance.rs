//! Integration: §3.4 robustness — outages remap buckets and degrade hit
//! rates gracefully, across the constellation/core/sim crate boundary;
//! plus the time-varying extension: churn, link flaps, and cold-restart
//! recovery through the fault-schedule subsystem.

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::{Location, Trace};
use starcdn::config::StarCdnConfig;
use starcdn::system::SpaceCdn;
use starcdn::variants::Variant;
use starcdn_constellation::buckets::BucketTiling;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::schedule::{ChurnParams, FaultEvent, FaultSchedule, TimedFault};
use starcdn_orbit::time::SimDuration;
use starcdn_sim::access_log::build_access_log;
use starcdn_sim::engine::{
    run_space, run_space_with_faults, run_space_with_faults_measured, SimConfig,
};
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn trace() -> Trace {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 41);
    model.generate_trace(SimDuration::from_hours(2), 41)
}

#[test]
fn outage_degrades_but_does_not_break() {
    let t = trace();
    let cache = t.unique_objects().1 / 50;
    let healthy = Runner::new(World::starlink_nine_cities(), &t, SimConfig::default())
        .run(Variant::StarCdn { l: 9 }, cache);

    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 43);
    let degraded = Runner::new(world.with_failures(failures), &t, SimConfig::default())
        .run(Variant::StarCdn { l: 9 }, cache);

    assert_eq!(degraded.stats.requests, healthy.stats.requests);
    let h = healthy.stats.request_hit_rate();
    let d = degraded.stats.request_hit_rate();
    assert!(d <= h + 0.01, "outage should not raise hit rate: {d} vs {h}");
    assert!(d > h - 0.15, "outage cost too extreme: {d} vs {h}");
    // Still saving substantial uplink (paper: 74% even degraded).
    assert!(1.0 - degraded.uplink_fraction() > 0.3, "uplink saving collapsed");
}

#[test]
fn every_bucket_remains_covered_under_paper_scale_outage() {
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 47);
    let tiling = BucketTiling::new(9).unwrap();
    let served = failures.buckets_served(&world.grid, &tiling);
    // Union of served buckets covers all 9, and every alive satellite
    // serves at least its own bucket.
    let mut covered = std::collections::BTreeSet::new();
    for (id, buckets) in &served {
        assert!(!buckets.is_empty(), "{id} serves nothing");
        covered.extend(buckets.iter().copied());
    }
    assert_eq!(covered.len(), 9);
}

#[test]
fn extreme_outage_still_serves_all_requests() {
    // Kill a third of the constellation: requests must still complete
    // (through remapped owners or straight ground fetches).
    let t = trace();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 432, 53);
    let m = Runner::new(world.with_failures(failures), &t, SimConfig::default())
        .run(Variant::StarCdn { l: 4 }, t.unique_objects().1 / 50);
    assert_eq!(m.stats.requests as usize, t.len());
    assert!(m.stats.request_hit_rate() > 0.0);
}

#[test]
fn empty_schedule_is_bit_for_bit_identical_to_static_run() {
    let t = trace();
    let world = World::starlink_nine_cities();
    let log = build_access_log(&world, &t, 15, &SimConfig::default().scheduler());
    // Same world with an (empty) schedule attached: identical log.
    let w2 = World::starlink_nine_cities().with_fault_schedule(FaultSchedule::empty());
    let log2 = build_access_log(&w2, &t, 15, &SimConfig::default().scheduler());
    assert_eq!(log, log2, "empty schedule must not perturb scheduling");

    let cfg = StarCdnConfig::starcdn(9, 5_000_000);
    let mut plain = SpaceCdn::new(cfg.clone());
    let m_plain = run_space(&mut plain, &log);
    let mut churn = SpaceCdn::new(cfg);
    let m_churn = run_space_with_faults(&mut churn, &log2, &w2.schedule);
    assert_eq!(m_plain.stats, m_churn.stats);
    assert_eq!(m_plain.latencies_ms, m_churn.latencies_ms);
    assert_eq!(m_plain.uplink_bytes, m_churn.uplink_bytes);
    assert_eq!(m_plain.per_satellite, m_churn.per_satellite);
    assert!(m_churn.availability.is_empty());
    assert_eq!(m_churn.cold_restart_misses, 0);
}

#[test]
fn mass_outage_at_t0_reproduces_static_outage_metrics() {
    let t = trace();
    let world = World::starlink_nine_cities();
    let outage = FailureModel::sample(&world.grid, 126, 43);
    let cfg = StarCdnConfig::starcdn(9, 5_000_000);

    // Static path: outage frozen for the whole run.
    let w_static = World::starlink_nine_cities().with_failures(outage.clone());
    let log_static = build_access_log(&w_static, &t, 15, &SimConfig::default().scheduler());
    let mut s = SpaceCdn::with_failures(cfg.clone(), outage.clone());
    let m_static = run_space(&mut s, &log_static);

    // Dynamic path: the same satellites die at t = 0 and never recover.
    let sched = FaultSchedule::mass_outage_at(0, outage.dead());
    let w_churn = World::starlink_nine_cities().with_fault_schedule(sched.clone());
    let log_churn = build_access_log(&w_churn, &t, 15, &SimConfig::default().scheduler());
    assert_eq!(log_static, log_churn, "t=0 mass outage must schedule like the static set");

    let mut c = SpaceCdn::new(cfg);
    let m_churn = run_space_with_faults(&mut c, &log_churn, &sched);
    assert_eq!(m_static.stats, m_churn.stats);
    assert_eq!(m_static.uplink_bytes, m_churn.uplink_bytes);
    assert_eq!(m_static.latencies_ms, m_churn.latencies_ms);
    assert_eq!(m_static.per_satellite, m_churn.per_satellite);
    assert_eq!(m_static.remapped_requests, m_churn.remapped_requests);
    assert_eq!(m_static.reroute_extra_hops, m_churn.reroute_extra_hops);
    assert_eq!(m_churn.cold_restart_misses, 0, "nobody ever recovers");
    // The dynamic run additionally carries the availability timeline.
    assert!(!m_churn.availability.is_empty());
    assert!(m_churn.availability.iter().all(|p| p.alive_sats == 1296 - 126));
}

#[test]
fn recovered_satellites_rewarm_within_the_run() {
    // 300 satellites are dead from t = 0 and all recover at t = 3600 in a
    // 2 h trace: cold-restart misses must be observed, and the hit rate
    // of the second post-recovery half-hour must beat the first (the
    // caches measurably re-warm).
    let t = trace();
    let world = World::starlink_nine_cities();
    let outage = FailureModel::sample(&world.grid, 300, 71);
    let mut events: Vec<TimedFault> =
        outage.dead().map(|s| TimedFault { at_secs: 0, event: FaultEvent::SatDown(s) }).collect();
    events.extend(outage.dead().map(|s| TimedFault { at_secs: 3600, event: FaultEvent::SatUp(s) }));
    let sched = FaultSchedule::from_events(events);
    let w = World::starlink_nine_cities().with_fault_schedule(sched.clone());
    let log = build_access_log(&w, &t, 15, &SimConfig::default().scheduler());
    let cfg = StarCdnConfig::starcdn(9, 5_000_000);

    let mut full = SpaceCdn::new(cfg.clone());
    let m_full = run_space_with_faults(&mut full, &log, &sched);
    assert!(m_full.cold_restart_misses > 0, "recovery must be observed as cold misses");
    assert!(m_full.remapped_requests > 0, "outage phase remaps");
    // Availability timeline shows the dip and the recovery.
    let first = m_full.availability.first().unwrap();
    let last = m_full.availability.last().unwrap();
    assert_eq!(first.alive_sats, 1296 - 300);
    assert_eq!(last.alive_sats, 1296);

    // Windowed hit rates after recovery (deterministic runs, so the
    // difference of two measured tails isolates the early window).
    let mut a = SpaceCdn::new(cfg.clone());
    let m_a = run_space_with_faults_measured(&mut a, &log, &sched, 3600); // [3600, end)
    let mut b = SpaceCdn::new(cfg);
    let m_b = run_space_with_faults_measured(&mut b, &log, &sched, 5400); // [5400, end)
    let early_requests = m_a.stats.requests - m_b.stats.requests;
    let early_hits = m_a.stats.hits - m_b.stats.hits;
    assert!(early_requests > 0 && m_b.stats.requests > 0, "both windows see traffic");
    let early_rate = early_hits as f64 / early_requests as f64;
    let late_rate = m_b.stats.request_hit_rate();
    assert!(
        late_rate > early_rate,
        "hit rate must recover after the cold restarts: early {early_rate:.4} late {late_rate:.4}"
    );
}

#[test]
fn link_flap_churn_runs_and_reroutes() {
    // Pure link churn: no satellite ever dies, so ownership is stable,
    // but BFS pays extra hops to route around cut ISLs.
    let t = trace();
    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 1e15, // effectively no satellite churn
        sat_mttr_secs: 60.0,
        link_mtbf_secs: Some(6.0 * 3600.0),
        link_mttr_secs: 900.0,
        horizon_secs: 7200,
        seed: 77,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    assert!(!sched.is_empty(), "2 h over 2592 links at 6 h MTBF must flap something");
    let w = World::starlink_nine_cities().with_fault_schedule(sched.clone());
    let log = build_access_log(&w, &t, 15, &SimConfig::default().scheduler());
    let mut cdn = SpaceCdn::new(StarCdnConfig::starcdn(9, 5_000_000));
    let m = run_space_with_faults(&mut cdn, &log, &sched);
    assert_eq!(m.stats.requests as usize, t.len());
    assert_eq!(m.cold_restart_misses, 0, "links flapping wipes no caches");
    assert_eq!(m.remapped_requests, 0, "ownership is node-liveness based");
    assert!(m.availability.iter().all(|p| p.alive_sats == 1296));
    assert!(m.availability.iter().any(|p| p.cut_links > 0), "some epoch saw a cut link");
    assert!(m.reroute_extra_hops > 0, "detours around cut links cost hops");
}

#[test]
fn scheduler_and_fleet_agree_on_liveness() {
    // No request may be first-contacted by a dead satellite.
    let t = trace();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 200, 59);
    let world = world.with_failures(failures.clone());
    let log = build_access_log(&world, &t, 15, &SimConfig::default().scheduler());
    for e in &log.entries {
        if let Some(fc) = e.first_contact {
            assert!(failures.is_alive(fc), "dead first contact {fc}");
        }
    }
}
