//! Integration: §3.4 robustness — outages remap buckets and degrade hit
//! rates gracefully, across the constellation/core/sim crate boundary.

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::{Location, Trace};
use starcdn::variants::Variant;
use starcdn_constellation::buckets::BucketTiling;
use starcdn_constellation::failures::FailureModel;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn trace() -> Trace {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 41);
    model.generate_trace(SimDuration::from_hours(2), 41)
}

#[test]
fn outage_degrades_but_does_not_break() {
    let t = trace();
    let cache = t.unique_objects().1 / 50;
    let healthy =
        Runner::new(World::starlink_nine_cities(), &t, SimConfig::default())
            .run(Variant::StarCdn { l: 9 }, cache);

    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 43);
    let degraded = Runner::new(world.with_failures(failures), &t, SimConfig::default())
        .run(Variant::StarCdn { l: 9 }, cache);

    assert_eq!(degraded.stats.requests, healthy.stats.requests);
    let h = healthy.stats.request_hit_rate();
    let d = degraded.stats.request_hit_rate();
    assert!(d <= h + 0.01, "outage should not raise hit rate: {d} vs {h}");
    assert!(d > h - 0.15, "outage cost too extreme: {d} vs {h}");
    // Still saving substantial uplink (paper: 74% even degraded).
    assert!(1.0 - degraded.uplink_fraction() > 0.3, "uplink saving collapsed");
}

#[test]
fn every_bucket_remains_covered_under_paper_scale_outage() {
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 47);
    let tiling = BucketTiling::new(9).unwrap();
    let served = failures.buckets_served(&world.grid, &tiling);
    // Union of served buckets covers all 9, and every alive satellite
    // serves at least its own bucket.
    let mut covered = std::collections::BTreeSet::new();
    for (id, buckets) in &served {
        assert!(!buckets.is_empty(), "{id} serves nothing");
        covered.extend(buckets.iter().copied());
    }
    assert_eq!(covered.len(), 9);
}

#[test]
fn extreme_outage_still_serves_all_requests() {
    // Kill a third of the constellation: requests must still complete
    // (through remapped owners or straight ground fetches).
    let t = trace();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 432, 53);
    let m = Runner::new(world.with_failures(failures), &t, SimConfig::default())
        .run(Variant::StarCdn { l: 4 }, t.unique_objects().1 / 50);
    assert_eq!(m.stats.requests as usize, t.len());
    assert!(m.stats.request_hit_rate() > 0.0);
}

#[test]
fn scheduler_and_fleet_agree_on_liveness() {
    // No request may be first-contacted by a dead satellite.
    use starcdn_sim::access_log::build_access_log;
    let t = trace();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 200, 59);
    let world = world.with_failures(failures.clone());
    let log = build_access_log(&world, &t, 15, &SimConfig::default().scheduler());
    for e in &log.entries {
        if let Some(fc) = e.first_contact {
            assert!(failures.is_alive(fc), "dead first contact {fc}");
        }
    }
}
