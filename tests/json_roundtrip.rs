//! JSON persistence round-trips over the vendored serde stack.
//!
//! The offline container builds against vendored stand-ins for
//! serde/serde_json (see `vendor/stubs/README.md`); these tests pin that
//! the stand-ins do real work on the workspace's actual persistence
//! surfaces — SpaceGEN model bundles, the GPD export, and the replayer
//! access-log hand-off — plus the full derive-shape matrix (struct
//! kinds, enum variant kinds, generics, `#[serde(default)]`) and the
//! error paths: malformed input must fail with a typed error, never
//! panic and never silently succeed.

use serde::{Deserialize, Serialize};
use spacegen::gpd::GlobalPopularity;
use spacegen::io::ModelBundle;
use spacegen::trace::{LocationId, Request, Trace};
use starcdn::variants::Variant;
use starcdn_cache::object::ObjectId;
use starcdn_constellation::schedule::{FaultEvent, TimedFault};
use starcdn_orbit::time::SimTime;
use starcdn_orbit::walker::SatelliteId;
use starcdn_sim::access_log::{AccessLog, AccessLogEntry};

fn small_trace() -> Trace {
    let mut requests = Vec::new();
    for i in 0..200u64 {
        requests.push(Request {
            time: SimTime::from_secs(i),
            object: ObjectId(i % 17),
            size: 1_000 + (i % 5) * 512,
            location: LocationId((i % 3) as u16),
        });
    }
    Trace { requests }
}

// ---------------------------------------------------------------------------
// Real persistence surfaces
// ---------------------------------------------------------------------------

#[test]
fn model_bundle_roundtrips_through_json() {
    let bundle = ModelBundle::from_trace(&small_trace(), 3, 0xC0FFEE);
    let mut buf = Vec::new();
    bundle.write_json(&mut buf).expect("write_json");
    let back = ModelBundle::read_json(&buf[..]).expect("read_json");
    assert_eq!(back.gpd.num_locations, bundle.gpd.num_locations);
    assert_eq!(back.gpd.records, bundle.gpd.records);
    assert_eq!(back.pfds.len(), bundle.pfds.len());
    for (a, b) in bundle.pfds.iter().zip(&back.pfds) {
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.max_stack_distance, b.max_stack_distance);
        assert_eq!(a.total_requests, b.total_requests);
        assert!((a.req_rate_hz - b.req_rate_hz).abs() < 1e-12);
        assert!((a.mean_interarrival_s - b.mean_interarrival_s).abs() < 1e-12);
    }
}

#[test]
fn gpd_roundtrips_through_json() {
    let gpd = GlobalPopularity::from_trace(&small_trace(), 3);
    let json = gpd.to_json();
    let back = GlobalPopularity::from_json(&json).expect("from_json");
    assert_eq!(back.num_locations, gpd.num_locations);
    assert_eq!(back.records, gpd.records);
    // The export is deterministic: same model, same bytes.
    assert_eq!(json, gpd.to_json());
}

#[test]
fn access_log_roundtrips_through_json() {
    let log = AccessLog {
        entries: vec![
            AccessLogEntry {
                time: SimTime::from_secs(7),
                object: ObjectId(42),
                size: 4096,
                location: LocationId(2),
                first_contact: Some(SatelliteId { orbit: 3, slot: 11 }),
                gsl_oneway_ms: 12.25,
            },
            AccessLogEntry {
                time: SimTime::from_secs(9),
                object: ObjectId(u64::MAX),
                size: u64::MAX,
                location: LocationId(0),
                first_contact: None,
                gsl_oneway_ms: 0.0,
            },
        ],
        epoch_secs: 15,
    };
    let mut buf = Vec::new();
    log.write_json(&mut buf).expect("write_json");
    let back = AccessLog::read_json(&buf[..]).expect("read_json");
    assert_eq!(back, log);
}

#[test]
fn variant_enum_all_shapes_roundtrip() {
    let variants = [
        Variant::StaticCache,
        Variant::StarCdn { l: 8 },
        Variant::StarCdnNoRelay { l: 3 },
        Variant::StarCdnNoHashing,
        Variant::StarCdnPrefetch { l: 5, k: 100 },
        Variant::NaiveLru,
        Variant::NoCache,
        Variant::TerrestrialCdn,
    ];
    for v in variants {
        let json = serde_json::to_string(&v).expect("encode variant");
        let back: Variant = serde_json::from_str(&json).expect("decode variant");
        assert_eq!(back, v, "round-trip failed for {json}");
    }
    // Externally-tagged representation, as real serde would produce.
    assert_eq!(serde_json::to_string(&Variant::StaticCache).unwrap(), "\"StaticCache\"");
    assert_eq!(
        serde_json::to_string(&Variant::StarCdn { l: 8 }).unwrap(),
        "{\"StarCdn\":{\"l\":8}}"
    );
}

#[test]
fn fault_event_tuple_variants_roundtrip() {
    let a = SatelliteId { orbit: 1, slot: 2 };
    let b = SatelliteId { orbit: 3, slot: 4 };
    let events = [
        FaultEvent::SatDown(a),
        FaultEvent::SatUp(b),
        FaultEvent::LinkDown(a, b),
        FaultEvent::LinkUp(b, a),
    ];
    for e in events {
        let timed = TimedFault { at_secs: 99, event: e };
        let json = serde_json::to_string(&timed).expect("encode");
        let back: TimedFault = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, timed, "round-trip failed for {json}");
    }
}

// ---------------------------------------------------------------------------
// Derive-shape matrix on local types
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Newtype(u32);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(u32, String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Wrapper<T: Clone> {
    inner: T,
    tag: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Defaults {
    required: u32,
    #[serde(default)]
    optional_count: u64,
    #[serde(default)]
    optional_name: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Kitchen {
    floats: Vec<f64>,
    ints: Vec<i64>,
    map: std::collections::HashMap<u16, String>,
    ordered: std::collections::BTreeMap<String, u64>,
    opt_some: Option<Pair>,
    opt_none: Option<u32>,
    pairs: Vec<(u32, u64)>,
    text: String,
}

#[test]
fn derive_shape_matrix_roundtrips() {
    let newtype = Newtype(7);
    assert_eq!(serde_json::to_string(&newtype).unwrap(), "7");
    assert_eq!(serde_json::from_str::<Newtype>("7").unwrap(), newtype);

    let pair = Pair(1, "two".into());
    assert_eq!(serde_json::to_string(&pair).unwrap(), "[1,\"two\"]");
    assert_eq!(serde_json::from_str::<Pair>("[1,\"two\"]").unwrap(), pair);

    let wrapped = Wrapper { inner: Newtype(3), tag: "t".into() };
    let json = serde_json::to_string(&wrapped).unwrap();
    assert_eq!(serde_json::from_str::<Wrapper<Newtype>>(&json).unwrap(), wrapped);

    let mut map = std::collections::HashMap::new();
    map.insert(300u16, "three hundred".to_string());
    map.insert(5u16, "five".to_string());
    let mut ordered = std::collections::BTreeMap::new();
    ordered.insert("z".to_string(), 26u64);
    ordered.insert("a".to_string(), 1u64);
    let kitchen = Kitchen {
        floats: vec![0.0, -1.5, 1e300, f64::MIN_POSITIVE],
        ints: vec![i64::MIN, -1, 0, i64::MAX],
        map,
        ordered,
        opt_some: Some(Pair(9, "nine".into())),
        opt_none: None,
        pairs: vec![(1, 2), (3, 4)],
        text: "esc \"quotes\" \\ slash \n tab\t nul\u{1} ünïcødé 🛰".into(),
    };
    let json = serde_json::to_string(&kitchen).unwrap();
    let back: Kitchen = serde_json::from_str(&json).expect("decode kitchen");
    assert_eq!(back, kitchen);
    // Integer map keys are stringified JSON object keys.
    assert!(json.contains("\"300\""), "integer map key not stringified: {json}");
    // HashMap output is deterministic (sorted) under the vendored stub.
    assert_eq!(json, serde_json::to_string(&kitchen).unwrap());

    // Pretty output parses back to the same value.
    let pretty = serde_json::to_string_pretty(&kitchen).unwrap();
    let back: Kitchen = serde_json::from_str(&pretty).expect("decode pretty");
    assert_eq!(back, kitchen);
}

#[test]
fn serde_default_fills_missing_fields() {
    let d: Defaults = serde_json::from_str("{\"required\":5}").expect("defaults apply");
    assert_eq!(d, Defaults { required: 5, optional_count: 0, optional_name: String::new() });

    // Present values still win over the default.
    let d: Defaults =
        serde_json::from_str("{\"required\":5,\"optional_count\":9}").expect("explicit wins");
    assert_eq!(d.optional_count, 9);

    // A genuinely required field stays required.
    let err = serde_json::from_str::<Defaults>("{\"optional_count\":9}");
    assert!(err.is_err(), "missing required field must be an error");
}

#[test]
fn unknown_fields_are_ignored_like_serde_default() {
    let d: Defaults =
        serde_json::from_str("{\"required\":5,\"labelled\":\"future-field\"}").expect("ignored");
    assert_eq!(d.required, 5);
}

// ---------------------------------------------------------------------------
// Hostile input: typed errors, never panics
// ---------------------------------------------------------------------------

#[test]
fn malformed_json_errors_never_panic() {
    let cases: &[&str] = &[
        "",
        "{",
        "}",
        "[1,",
        "{\"a\":}",
        "{\"a\"1}",
        "tru",
        "nul",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\uD800\"",
        "\"truncated unicode \\u12\"",
        "01x",
        "-",
        "1e999e",
        "[1] trailing",
        "{\"a\":1,}",
        "\u{7f}",
        "[\"\u{1}\"]",
    ];
    for case in cases {
        let res = serde_json::from_str::<Kitchen>(case);
        assert!(res.is_err(), "expected error for {case:?}");
        // The error formats without panicking, too.
        let _ = format!("{}", res.unwrap_err());
    }
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    let bomb = format!("{}1{}", "[".repeat(5000), "]".repeat(5000));
    assert!(serde_json::from_str::<Vec<u64>>(&bomb).is_err());
    let bomb = "{\"a\":".repeat(5000) + "1" + &"}".repeat(5000);
    assert!(serde_json::from_str::<Defaults>(&bomb).is_err());
}

#[test]
fn type_mismatches_are_typed_errors() {
    assert!(serde_json::from_str::<Newtype>("\"seven\"").is_err());
    assert!(serde_json::from_str::<Newtype>("-7").is_err());
    assert!(serde_json::from_str::<Pair>("[1]").is_err());
    assert!(serde_json::from_str::<Variant>("\"NotAVariant\"").is_err());
    assert!(serde_json::from_str::<Variant>("{\"StarCdn\":{}}").is_err());
    assert!(serde_json::from_str::<AccessLog>("[]").is_err());
    // u64 overflow and u16 range checks.
    assert!(serde_json::from_str::<Vec<u16>>("[70000]").is_err());
    assert!(serde_json::from_str::<Vec<u64>>("[-1]").is_err());
}

#[test]
fn float_shapes_match_serde_json() {
    assert_eq!(serde_json::to_string(&1.0f64).unwrap(), "1.0");
    assert_eq!(serde_json::to_string(&0.1f64).unwrap(), "0.1");
    assert_eq!(serde_json::to_string(&-3.5f64).unwrap(), "-3.5");
    assert!(serde_json::to_string(&f64::NAN).is_err());
    assert!(serde_json::to_string(&f64::INFINITY).is_err());
    // Shortest-round-trip text survives re-parsing exactly.
    for f in [0.1f64, 1e-308, 123456789.123456789, -2.2250738585072014e-308] {
        let json = serde_json::to_string(&f).unwrap();
        let back: f64 = serde_json::from_str(&json).unwrap();
        assert_eq!(back.to_bits(), f.to_bits(), "float drift for {json}");
    }
}
