//! Integration: the crossbeam parallel replayer agrees with the
//! deterministic engine (exactly without relay, approximately with).

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::config::StarCdnConfig;
use starcdn::system::SpaceCdn;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::schedule::{ChurnParams, FaultSchedule};
use starcdn_orbit::time::SimDuration;
use starcdn_sim::access_log::{build_access_log, AccessLog};
use starcdn_sim::engine::{run_space, run_space_with_faults, SimConfig};
use starcdn_sim::replayer::{replay_parallel, replay_parallel_with_faults};
use starcdn_sim::world::World;

fn log() -> AccessLog {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    build_access_log(&world, &trace, 15, &SimConfig::default().scheduler())
}

#[test]
fn parallel_exact_parity_without_relay_across_worker_counts() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    for workers in [1, 2, 7, 16] {
        let par = replay_parallel(cfg.clone(), FailureModel::none(), &log, workers);
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes);
        assert_eq!(par.per_satellite, reference.per_satellite);
    }
}

#[test]
fn parallel_close_parity_with_relay() {
    let log = log();
    let cfg = StarCdnConfig::starcdn(4, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    let par = replay_parallel(cfg, FailureModel::none(), &log, 8);
    assert_eq!(par.stats.requests, reference.stats.requests);
    let d = (par.stats.request_hit_rate() - reference.stats.request_hit_rate()).abs();
    assert!(d < 0.03, "relay parity drift {d}");
}

#[test]
fn parallel_exact_parity_under_churn() {
    // A nonempty time-varying schedule (satellite churn + link flaps):
    // the sequential engine and the parallel replayer must agree on
    // every metric, including the degraded-mode counters and the
    // availability timeline, at any worker count.
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 3.0 * 3600.0,
        sat_mttr_secs: 600.0,
        link_mtbf_secs: Some(4.0 * 3600.0),
        link_mttr_secs: 600.0,
        horizon_secs: 3600,
        seed: 91,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    assert!(!sched.is_empty(), "1 h at 3 h MTBF over 1296 satellites must churn");
    let world = world.with_fault_schedule(sched.clone());
    let log = build_access_log(&world, &trace, 15, &SimConfig::default().scheduler());

    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space_with_faults(&mut seq, &log, &sched);
    assert!(reference.cold_restart_misses > 0, "churn must surface cold restarts");
    assert!(reference.remapped_requests > 0, "churn must remap some requests");
    for workers in [1, 3, 8] {
        let par =
            replay_parallel_with_faults(cfg.clone(), FailureModel::none(), &log, &sched, workers);
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes, "{workers} workers");
        assert_eq!(par.per_satellite, reference.per_satellite, "{workers} workers");
        assert_eq!(par.cold_restart_misses, reference.cold_restart_misses, "{workers} workers");
        assert_eq!(par.remapped_requests, reference.remapped_requests, "{workers} workers");
        assert_eq!(par.reroute_extra_hops, reference.reroute_extra_hops, "{workers} workers");
        assert_eq!(par.availability, reference.availability, "{workers} workers");
    }
}

#[test]
fn parallel_empty_schedule_matches_static_replayer() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let plain = replay_parallel(cfg.clone(), FailureModel::none(), &log, 4);
    let empty =
        replay_parallel_with_faults(cfg, FailureModel::none(), &log, &FaultSchedule::empty(), 4);
    assert_eq!(plain.stats, empty.stats);
    assert_eq!(plain.per_satellite, empty.per_satellite);
    assert_eq!(plain.uplink_bytes, empty.uplink_bytes);
    assert!(empty.availability.is_empty());
}

#[test]
fn parallel_handles_outages() {
    let log = log();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 67);
    let cfg = StarCdnConfig::starcdn_no_relay(4, 5_000_000);
    let mut seq = SpaceCdn::with_failures(cfg.clone(), failures.clone());
    let reference = run_space(&mut seq, &log);
    let par = replay_parallel(cfg, failures, &log, 6);
    assert_eq!(par.stats, reference.stats);
}
