//! Integration: the crossbeam parallel replayer agrees with the
//! deterministic engine (exactly without relay, approximately with).

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::config::StarCdnConfig;
use starcdn::system::SpaceCdn;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::schedule::{ChurnParams, FaultSchedule, SolarStormParams};
use starcdn_orbit::time::SimDuration;
use starcdn_sim::access_log::{build_access_log, AccessLog};
use starcdn_sim::engine::{run_space, run_space_with_faults, SimConfig};
use starcdn_sim::replayer::{replay_parallel, replay_parallel_with_faults};
use starcdn_sim::world::World;

fn log() -> AccessLog {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    build_access_log(&world, &trace, 15, &SimConfig::default().scheduler())
}

#[test]
fn parallel_exact_parity_without_relay_across_worker_counts() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    for workers in [1, 2, 7, 16] {
        let par = replay_parallel(cfg.clone(), FailureModel::none(), &log, workers);
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes);
        assert_eq!(par.per_satellite, reference.per_satellite);
    }
}

#[test]
fn parallel_close_parity_with_relay() {
    let log = log();
    let cfg = StarCdnConfig::starcdn(4, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    let par = replay_parallel(cfg, FailureModel::none(), &log, 8);
    assert_eq!(par.stats.requests, reference.stats.requests);
    let d = (par.stats.request_hit_rate() - reference.stats.request_hit_rate()).abs();
    assert!(d < 0.03, "relay parity drift {d}");
}

#[test]
fn parallel_exact_parity_under_churn() {
    // A nonempty time-varying schedule (satellite churn + link flaps):
    // the sequential engine and the parallel replayer must agree on
    // every metric, including the degraded-mode counters and the
    // availability timeline, at any worker count.
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 3.0 * 3600.0,
        sat_mttr_secs: 600.0,
        link_mtbf_secs: Some(4.0 * 3600.0),
        link_mttr_secs: 600.0,
        horizon_secs: 3600,
        seed: 91,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    assert!(!sched.is_empty(), "1 h at 3 h MTBF over 1296 satellites must churn");
    let world = world.with_fault_schedule(sched.clone());
    let log = build_access_log(&world, &trace, 15, &SimConfig::default().scheduler());

    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space_with_faults(&mut seq, &log, &sched);
    assert!(reference.cold_restart_misses > 0, "churn must surface cold restarts");
    assert!(reference.remapped_requests > 0, "churn must remap some requests");
    for workers in [1, 3, 8] {
        let par =
            replay_parallel_with_faults(cfg.clone(), FailureModel::none(), &log, &sched, workers);
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes, "{workers} workers");
        assert_eq!(par.per_satellite, reference.per_satellite, "{workers} workers");
        assert_eq!(par.cold_restart_misses, reference.cold_restart_misses, "{workers} workers");
        assert_eq!(par.remapped_requests, reference.remapped_requests, "{workers} workers");
        assert_eq!(par.reroute_extra_hops, reference.reroute_extra_hops, "{workers} workers");
        assert_eq!(par.availability, reference.availability, "{workers} workers");
    }
}

#[test]
fn parallel_exact_parity_under_overload_and_churn() {
    // Overload admission on top of a nonempty churn schedule: the
    // lifecycle (admit/shed/retry/fallback/drop) runs on the replayer's
    // sequential pre-pass against the same failure views and ledger
    // state as the engine, so every metric — including the new
    // counters, the utilization timeline, and each individual latency
    // sample — must agree bit-for-bit at any worker count.
    use starcdn_sim::engine::run_space_overloaded;
    use starcdn_sim::overload::{OverloadConfig, RetryPolicy};
    use starcdn_sim::replayer::replay_parallel_overloaded;

    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 3.0 * 3600.0,
        sat_mttr_secs: 600.0,
        link_mtbf_secs: Some(4.0 * 3600.0),
        link_mttr_secs: 600.0,
        horizon_secs: 3600,
        seed: 91,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    let world = world.with_fault_schedule(sched.clone());
    let log = build_access_log(&world, &trace, 15, &SimConfig::default().scheduler());
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);

    // Headroom ≈ 1.5 mean objects per satellite per epoch: tight enough
    // that shedding, retries, fallbacks and drops all actually happen.
    let mean = log.entries.iter().map(|e| e.size).sum::<u64>() / log.entries.len() as u64;
    let overload = OverloadConfig {
        headroom: mean as f64 * 1.5 / 37_500_000_000.0,
        retry: RetryPolicy { max_attempts: 3, backoff_epochs: 0, deadline_ms: 1e9 },
    };

    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space_overloaded(&mut seq, &log, &sched, &overload);
    assert!(reference.shed_requests > 0, "overload run must shed");
    assert!(reference.retry_attempts > 0, "sheds must trigger retries");
    assert!(!reference.utilization.is_empty(), "ledger must emit a timeline");

    let sorted_bits = |m: &starcdn::metrics::SystemMetrics| {
        let mut v = m.latencies_ms.clone();
        v.sort_by(f64::total_cmp);
        v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    };
    let ref_lat = sorted_bits(&reference);
    for workers in [1, 4, 8] {
        let par = replay_parallel_overloaded(
            cfg.clone(),
            FailureModel::none(),
            &log,
            &sched,
            workers,
            &overload,
        );
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes, "{workers} workers");
        assert_eq!(par.per_satellite, reference.per_satellite, "{workers} workers");
        assert_eq!(par.cold_restart_misses, reference.cold_restart_misses, "{workers} workers");
        assert_eq!(par.remapped_requests, reference.remapped_requests, "{workers} workers");
        assert_eq!(par.reroute_extra_hops, reference.reroute_extra_hops, "{workers} workers");
        assert_eq!(par.availability, reference.availability, "{workers} workers");
        assert_eq!(par.shed_requests, reference.shed_requests, "{workers} workers");
        assert_eq!(par.retry_attempts, reference.retry_attempts, "{workers} workers");
        assert_eq!(par.served_primary, reference.served_primary, "{workers} workers");
        assert_eq!(par.served_replica, reference.served_replica, "{workers} workers");
        assert_eq!(
            par.served_origin_fallback, reference.served_origin_fallback,
            "{workers} workers"
        );
        assert_eq!(par.dropped_requests, reference.dropped_requests, "{workers} workers");
        assert_eq!(par.utilization, reference.utilization, "{workers} workers");
        assert_eq!(sorted_bits(&par), ref_lat, "{workers} workers: latency samples");
    }
}

#[test]
fn telemetry_recording_never_changes_replayer_output() {
    // The telemetry determinism contract: a live MemoryRecorder must not
    // perturb a single metric relative to the no-op recorder, under
    // churn and at any worker count — and the recorder itself must merge
    // its per-worker shards deterministically.
    use starcdn_sim::replayer::replay_parallel_with_faults_recorded;
    use starcdn_telemetry::{Counter, MemoryRecorder, Stage};

    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 3.0 * 3600.0,
        sat_mttr_secs: 600.0,
        link_mtbf_secs: Some(4.0 * 3600.0),
        link_mttr_secs: 600.0,
        horizon_secs: 3600,
        seed: 91,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    let world = world.with_fault_schedule(sched.clone());
    let log = build_access_log(&world, &trace, 15, &SimConfig::default().scheduler());
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);

    let reference = replay_parallel_with_faults(cfg.clone(), FailureModel::none(), &log, &sched, 4);
    let mut snapshots = Vec::new();
    for workers in [1, 4, 8] {
        let rec = MemoryRecorder::new();
        let recorded = replay_parallel_with_faults_recorded(
            cfg.clone(),
            FailureModel::none(),
            &log,
            &sched,
            workers,
            &rec,
        );
        assert_eq!(recorded.stats, reference.stats, "{workers} workers");
        assert_eq!(recorded.per_satellite, reference.per_satellite, "{workers} workers");
        assert_eq!(recorded.uplink_bytes, reference.uplink_bytes, "{workers} workers");
        assert_eq!(
            recorded.cold_restart_misses, reference.cold_restart_misses,
            "{workers} workers"
        );
        assert_eq!(recorded.availability, reference.availability, "{workers} workers");

        // The recorder saw the run: counters line up with the metrics.
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(Counter::CacheHits) + snap.counter(Counter::CacheMisses),
            snap.counter(Counter::RequestsRouted),
            "{workers} workers"
        );
        assert_eq!(
            snap.counter(Counter::ColdRestartMisses),
            reference.cold_restart_misses,
            "{workers} workers"
        );
        assert_eq!(
            snap.counter(Counter::RemappedRequests),
            reference.remapped_requests,
            "{workers} workers"
        );
        assert!(snap.spans.keys().any(|&(s, _)| s == Stage::ReplayShard));
        snapshots.push(snap);
    }
    // Worker-count-independent telemetry: counters, histograms, and the
    // event timeline are identical across 1/4/8 workers. QueueDepth is
    // excluded (it records per-shard queue lengths, which depend on the
    // shard count by design), as are span timings (wall-clock) and
    // ReplayShard keys (one per shard).
    let histos_sans_queue = |snap: &starcdn_telemetry::TelemetrySnapshot| {
        snap.histograms
            .iter()
            .filter(|(h, _)| *h != starcdn_telemetry::Histo::QueueDepth)
            .cloned()
            .collect::<Vec<_>>()
    };
    for pair in snapshots.windows(2) {
        assert_eq!(pair[0].counters, pair[1].counters);
        assert_eq!(histos_sans_queue(&pair[0]), histos_sans_queue(&pair[1]));
        assert_eq!(pair[0].events, pair[1].events);
    }

    // Two runs at the same worker count export byte-identically apart
    // from wall-clock span durations.
    let rec = MemoryRecorder::new();
    replay_parallel_with_faults_recorded(cfg.clone(), FailureModel::none(), &log, &sched, 4, &rec);
    let again = rec.snapshot();
    assert_eq!(again.counters, snapshots[1].counters);
    assert_eq!(again.histograms, snapshots[1].histograms);
    assert_eq!(again.events, snapshots[1].events);
}

/// Single-city trace for the delayed-hit parity pins: the first
/// contact is stable within a scheduler epoch, so same-epoch repeats
/// land on one owner and coalesce onto in-flight fetches.
fn delayed_log() -> AccessLog {
    use spacegen::trace::{LocationId, Request, Trace};
    use starcdn_cache::object::ObjectId;
    use starcdn_orbit::time::SimTime;
    let world = World::starlink_nine_cities();
    let reqs: Vec<Request> = (0..4000u64)
        .map(|k| Request {
            time: SimTime::from_secs(k / 6),
            object: ObjectId((k * 7919) % 60),
            size: 500 + (k % 5) * 100,
            location: LocationId(0),
        })
        .collect();
    build_access_log(&world, &Trace::new(reqs), 15, &SimConfig::default().scheduler())
}

fn delayed_cfg() -> StarCdnConfig {
    use starcdn::config::DelayedHitConfig;
    // Heterogeneous origin tiers (2/4/6 epochs in flight) so the
    // latency-aware machinery — not just the uniform degenerate case —
    // is under the parity pin.
    StarCdnConfig::starcdn_no_relay(4, 20_000)
        .with_delayed_hits(DelayedHitConfig::with_latency(2, 40.0).with_origin_tiers(3))
}

fn assert_delayed_metrics_equal(
    a: &starcdn::metrics::SystemMetrics,
    b: &starcdn::metrics::SystemMetrics,
    what: &str,
) {
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.uplink_bytes, b.uplink_bytes, "{what}: uplink");
    assert_eq!(a.per_satellite, b.per_satellite, "{what}: per-satellite");
    assert_eq!(a.delayed_hits, b.delayed_hits, "{what}: delayed hits");
    assert_eq!(a.coalesced_requests, b.coalesced_requests, "{what}: coalesced");
    assert_eq!(a.residual_epoch_hist, b.residual_epoch_hist, "{what}: residual histogram");
    let sorted = |m: &starcdn::metrics::SystemMetrics| {
        let mut bits: Vec<u64> = m.latencies_ms.iter().map(|l| l.to_bits()).collect();
        bits.sort_unstable();
        bits
    };
    assert_eq!(sorted(a), sorted(b), "{what}: latency multiset");
}

#[test]
fn delayed_exact_parity_across_worker_counts() {
    let log = delayed_log();
    let cfg = delayed_cfg();
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    assert!(reference.delayed_hits > 0, "trace must exercise coalescing");
    assert!(reference.coalesced_requests > 0, "fetches must retire followers");
    for workers in [1, 4, 8] {
        let par = replay_parallel(cfg.clone(), FailureModel::none(), &log, workers);
        assert_delayed_metrics_equal(&reference, &par, &format!("{workers} workers"));
    }
}

#[test]
fn delayed_exact_parity_under_churn() {
    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 3.0 * 3600.0,
        sat_mttr_secs: 600.0,
        link_mtbf_secs: Some(4.0 * 3600.0),
        link_mttr_secs: 600.0,
        horizon_secs: 3600,
        seed: 91,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    assert!(!sched.is_empty(), "churn parameters produced no events");
    let log = delayed_log();
    let cfg = delayed_cfg();
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space_with_faults(&mut seq, &log, &sched);
    assert!(reference.delayed_hits > 0, "churn run must still coalesce");
    for workers in [1, 4, 8] {
        let par =
            replay_parallel_with_faults(cfg.clone(), FailureModel::none(), &log, &sched, workers);
        assert_delayed_metrics_equal(&reference, &par, &format!("churn {workers} workers"));
        assert_eq!(par.cold_restart_misses, reference.cold_restart_misses, "{workers} workers");
        assert_eq!(par.remapped_requests, reference.remapped_requests, "{workers} workers");
        assert_eq!(par.availability, reference.availability, "{workers} workers");
    }
}

#[test]
fn delayed_exact_parity_under_overload_and_churn() {
    use starcdn_sim::engine::run_space_overloaded;
    use starcdn_sim::overload::{OverloadConfig, RetryPolicy};
    use starcdn_sim::replayer::replay_parallel_overloaded;

    let world = World::starlink_nine_cities();
    let params = ChurnParams {
        sat_mtbf_secs: 3.0 * 3600.0,
        sat_mttr_secs: 600.0,
        link_mtbf_secs: Some(4.0 * 3600.0),
        link_mttr_secs: 600.0,
        horizon_secs: 3600,
        seed: 91,
    };
    let sched = FaultSchedule::churn(&world.grid, &params);
    let log = delayed_log();
    let cfg = delayed_cfg();
    let mean = log.entries.iter().map(|e| e.size).sum::<u64>() / log.entries.len() as u64;
    let overload = OverloadConfig {
        headroom: mean as f64 * 1.5 / 37_500_000_000.0,
        retry: RetryPolicy { max_attempts: 3, backoff_epochs: 0, deadline_ms: 1e9 },
    };

    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space_overloaded(&mut seq, &log, &sched, &overload);
    assert!(reference.delayed_hits > 0, "overloaded run must still coalesce");
    for workers in [1, 4, 8] {
        let par = replay_parallel_overloaded(
            cfg.clone(),
            FailureModel::none(),
            &log,
            &sched,
            workers,
            &overload,
        );
        assert_delayed_metrics_equal(&reference, &par, &format!("overload {workers} workers"));
        assert_eq!(par.shed_requests, reference.shed_requests, "{workers} workers");
        assert_eq!(par.retry_attempts, reference.retry_attempts, "{workers} workers");
        assert_eq!(par.dropped_requests, reference.dropped_requests, "{workers} workers");
        assert_eq!(par.utilization, reference.utilization, "{workers} workers");
    }
}

#[test]
fn parallel_empty_schedule_matches_static_replayer() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let plain = replay_parallel(cfg.clone(), FailureModel::none(), &log, 4);
    let empty =
        replay_parallel_with_faults(cfg, FailureModel::none(), &log, &FaultSchedule::empty(), 4);
    assert_eq!(plain.stats, empty.stats);
    assert_eq!(plain.per_satellite, empty.per_satellite);
    assert_eq!(plain.uplink_bytes, empty.uplink_bytes);
    assert!(empty.availability.is_empty());
}

#[test]
fn parallel_handles_outages() {
    let log = log();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 67);
    let cfg = StarCdnConfig::starcdn_no_relay(4, 5_000_000);
    let mut seq = SpaceCdn::with_failures(cfg.clone(), failures.clone());
    let reference = run_space(&mut seq, &log);
    let par = replay_parallel(cfg, failures, &log, 6);
    assert_eq!(par.stats, reference.stats);
}

#[test]
fn parallel_exact_parity_under_solar_storm_with_partitions() {
    // A spatially-correlated mass outage (solar storm over a contiguous
    // plane window, kill_prob < 1) strands live satellites inside the
    // dead footprint: their owners survive but no path reaches them, so
    // requests degrade to the origin bent pipe as `Partitioned`. The
    // engine and the parallel replayer must agree bit-for-bit on the
    // partitioned count, the recovery timeline, and every latency
    // sample at any worker count.
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    let params = SolarStormParams {
        center_plane: 36,
        plane_halfwidth: 6,
        kill_prob: 0.9,
        onset_secs: 600,
        onset_jitter_secs: 30,
        recovery_start_secs: 1800,
        recovery_spread_secs: 600,
        seed: 61,
    };
    let sched = FaultSchedule::solar_storm(&world.grid, &params);
    let world = world.with_fault_schedule(sched.clone());
    let log = build_access_log(&world, &trace, 15, &SimConfig::default().scheduler());

    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space_with_faults(&mut seq, &log, &sched);
    assert!(
        reference.partitioned_requests > 0,
        "a 90% storm must strand some survivors behind a partition"
    );
    // The storm dips availability and the staged recovery heals it
    // before the trace ends.
    let slos = reference.recovery_slos();
    assert_eq!(slos.len(), 1, "one storm, one dip");
    assert!(slos[0].dip_depth > 0);
    assert!(slos[0].time_to_full_recovery().is_some(), "storm must fully recover in-trace");
    // Conservation: every request is served somewhere (no overload, so
    // nothing is dropped).
    let served = reference.served_local
        + reference.served_relay_west
        + reference.served_relay_east
        + reference.served_ground;
    assert_eq!(served, reference.stats.requests);
    assert_eq!(reference.stats.requests, log.entries.len() as u64);

    let sorted_bits = |m: &starcdn::metrics::SystemMetrics| {
        let mut bits: Vec<u64> = m.latencies_ms.iter().map(|l| l.to_bits()).collect();
        bits.sort_unstable();
        bits
    };
    let ref_lat = sorted_bits(&reference);
    for workers in [1, 4, 8] {
        let par =
            replay_parallel_with_faults(cfg.clone(), FailureModel::none(), &log, &sched, workers);
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes, "{workers} workers");
        assert_eq!(par.per_satellite, reference.per_satellite, "{workers} workers");
        assert_eq!(
            par.partitioned_requests, reference.partitioned_requests,
            "{workers} workers: partitioned"
        );
        assert_eq!(par.availability, reference.availability, "{workers} workers: timeline");
        assert_eq!(par.recovery_slos(), slos, "{workers} workers: recovery SLOs");
        assert_eq!(par.cold_restart_misses, reference.cold_restart_misses, "{workers} workers");
        assert_eq!(par.remapped_requests, reference.remapped_requests, "{workers} workers");
        assert_eq!(sorted_bits(&par), ref_lat, "{workers} workers: latency samples");
    }
}
