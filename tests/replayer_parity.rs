//! Integration: the crossbeam parallel replayer agrees with the
//! deterministic engine (exactly without relay, approximately with).

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::config::StarCdnConfig;
use starcdn::system::SpaceCdn;
use starcdn_constellation::failures::FailureModel;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::access_log::{build_access_log, AccessLog};
use starcdn_sim::engine::{run_space, SimConfig};
use starcdn_sim::replayer::replay_parallel;
use starcdn_sim::world::World;

fn log() -> AccessLog {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    build_access_log(&world, &trace, 15, &SimConfig::default().scheduler())
}

#[test]
fn parallel_exact_parity_without_relay_across_worker_counts() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    for workers in [1, 2, 7, 16] {
        let par = replay_parallel(cfg.clone(), FailureModel::none(), &log, workers);
        assert_eq!(par.stats, reference.stats, "{workers} workers");
        assert_eq!(par.uplink_bytes, reference.uplink_bytes);
        assert_eq!(par.per_satellite, reference.per_satellite);
    }
}

#[test]
fn parallel_close_parity_with_relay() {
    let log = log();
    let cfg = StarCdnConfig::starcdn(4, 5_000_000);
    let mut seq = SpaceCdn::new(cfg.clone());
    let reference = run_space(&mut seq, &log);
    let par = replay_parallel(cfg, FailureModel::none(), &log, 8);
    assert_eq!(par.stats.requests, reference.stats.requests);
    let d = (par.stats.request_hit_rate() - reference.stats.request_hit_rate()).abs();
    assert!(d < 0.03, "relay parity drift {d}");
}

#[test]
fn parallel_handles_outages() {
    let log = log();
    let world = World::starlink_nine_cities();
    let failures = FailureModel::sample(&world.grid, 126, 67);
    let cfg = StarCdnConfig::starcdn_no_relay(4, 5_000_000);
    let mut seq = SpaceCdn::with_failures(cfg.clone(), failures.clone());
    let reference = run_space(&mut seq, &log);
    let par = replay_parallel(cfg, failures, &log, 6);
    assert_eq!(par.stats, reference.stats);
}
