//! Integration: the overload-aware request lifecycle (capacity
//! enforcement, bounded retry, load shedding, origin fallback).
//!
//! Two contracts: with overload *disabled* (infinite headroom) every
//! entry point is byte-identical to its non-overload twin — no ledger,
//! no utilization timeline, every new counter zero; with a demand spike
//! against a tight headroom, shedding and fallback engage, the drop
//! rate stays bounded by the retry policy, and nothing panics.

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::config::StarCdnConfig;
use starcdn::metrics::SystemMetrics;
use starcdn::system::SpaceCdn;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::schedule::FaultSchedule;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::access_log::{build_access_log, AccessLog};
use starcdn_sim::engine::{run_space_overloaded, run_space_with_faults, SimConfig};
use starcdn_sim::overload::{OverloadConfig, RetryPolicy};
use starcdn_sim::replayer::{replay_parallel_overloaded, replay_parallel_with_faults};
use starcdn_sim::world::World;

fn log() -> AccessLog {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, 61);
    let trace = model.generate_trace(SimDuration::from_hours(1), 61);
    let world = World::starlink_nine_cities();
    build_access_log(&world, &trace, 15, &SimConfig::default().scheduler())
}

/// Every field that could differ must not: overload off is the old code
/// path, bit for bit.
fn assert_identical(a: &SystemMetrics, b: &SystemMetrics, tag: &str) {
    assert_eq!(a.stats, b.stats, "{tag}");
    assert_eq!(a.uplink_bytes, b.uplink_bytes, "{tag}");
    assert_eq!(a.per_satellite, b.per_satellite, "{tag}");
    assert_eq!(a.served_local, b.served_local, "{tag}");
    assert_eq!(a.served_ground, b.served_ground, "{tag}");
    assert_eq!(a.remapped_requests, b.remapped_requests, "{tag}");
    assert_eq!(a.cold_restart_misses, b.cold_restart_misses, "{tag}");
    assert_eq!(a.reroute_extra_hops, b.reroute_extra_hops, "{tag}");
    assert_eq!(a.availability, b.availability, "{tag}");
    // Bitwise latency comparison (sorted: the parallel replayer merges
    // worker samples in shard order, not arrival order).
    let sorted = |m: &SystemMetrics| {
        let mut v = m.latencies_ms.clone();
        v.sort_by(f64::total_cmp);
        v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    };
    assert_eq!(sorted(a), sorted(b), "{tag}: latency samples must be bit-identical");
}

/// No overload-mode residue when the mode is off.
fn assert_untouched(m: &SystemMetrics, tag: &str) {
    assert_eq!(m.shed_requests, 0, "{tag}");
    assert_eq!(m.retry_attempts, 0, "{tag}");
    assert_eq!(m.served_primary, 0, "{tag}");
    assert_eq!(m.served_replica, 0, "{tag}");
    assert_eq!(m.served_origin_fallback, 0, "{tag}");
    assert_eq!(m.dropped_requests, 0, "{tag}");
    assert!(m.utilization.is_empty(), "{tag}: no ledger, no timeline");
}

#[test]
fn disabled_overload_is_byte_identical_to_plain_runs() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let sched = FaultSchedule::empty();

    let mut plain = SpaceCdn::new(cfg.clone());
    let reference = run_space_with_faults(&mut plain, &log, &sched);

    let mut gated = SpaceCdn::new(cfg.clone());
    let off = run_space_overloaded(&mut gated, &log, &sched, &OverloadConfig::disabled());
    assert_identical(&reference, &off, "engine");
    assert_untouched(&off, "engine");

    let par_ref = replay_parallel_with_faults(cfg.clone(), FailureModel::none(), &log, &sched, 4);
    let par_off = replay_parallel_overloaded(
        cfg,
        FailureModel::none(),
        &log,
        &sched,
        4,
        &OverloadConfig::disabled(),
    );
    assert_identical(&par_ref, &par_off, "replayer");
    assert_untouched(&par_off, "replayer");
    // And the engine agrees with the replayer (no-relay config).
    assert_identical(&reference, &par_off, "engine vs replayer");
}

#[test]
fn demand_spike_sheds_and_falls_back_without_panicking() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);

    // 10x demand spike on one bucket: every bucket-0 request is
    // repeated ten times. The bucket's owner chain saturates while the
    // first contact's GSL (charged only for objects it owns itself, or
    // by origin fallbacks) keeps room for the fallback path.
    let tiling = starcdn_constellation::buckets::BucketTiling::new(9).unwrap();
    let mut spiked = log.clone();
    spiked.entries = Vec::with_capacity(log.entries.len() * 2);
    for e in &log.entries {
        spiked.entries.push(*e);
        if tiling.bucket_of_object(e.object.hash64()).0 == 0 {
            for _ in 0..9 {
                spiked.entries.push(*e);
            }
        }
    }
    assert!(spiked.entries.len() > log.entries.len(), "bucket 0 must carry some traffic");
    let total_bytes: u64 = log.entries.iter().map(|e| e.size).sum();
    let mean = total_bytes / log.entries.len() as u64;
    // Budget ≈ 1.5 mean-size objects per satellite per epoch: the
    // spiked bucket blows through its owner and both retry replicas
    // within an epoch, while background traffic mostly serves in place.
    let headroom = mean as f64 * 1.5 / 37_500_000_000.0;
    let overload = OverloadConfig {
        headroom,
        retry: RetryPolicy { max_attempts: 3, backoff_epochs: 0, deadline_ms: 1e9 },
    };

    let mut cdn = SpaceCdn::new(cfg.clone());
    let m = run_space_overloaded(&mut cdn, &spiked, &FaultSchedule::empty(), &overload);

    assert!(m.shed_requests > 0, "spike must shed");
    assert!(m.served_origin_fallback > 0, "exhausted replicas must fall back to origin");
    assert!(m.served_primary > 0, "uncongested satellites still serve");
    assert!(m.served_replica > 0, "retries must rescue some requests at replicas");
    assert!(m.retry_attempts > 0, "sheds must trigger retries");
    assert!(!m.utilization.is_empty(), "ledger must emit a utilization timeline");
    assert!(m.utilization.iter().any(|p| p.shed_requests > 0));

    // Conservation: every entry is recorded (primary, replica, origin
    // fallback, unreachable — all call `record`) or dropped, and the
    // four-way classification covers exactly the routed requests.
    assert_eq!(
        m.stats.requests + m.dropped_requests,
        spiked.entries.len() as u64,
        "every entry must be recorded or dropped"
    );
    let sentinel = starcdn_orbit::walker::SatelliteId::new(u16::MAX, u16::MAX);
    let unreachable = m.per_satellite.get(&sentinel).map(|s| s.requests).unwrap_or(0);
    assert_eq!(
        m.served_primary + m.served_replica + m.served_origin_fallback + unreachable,
        m.stats.requests,
        "classification must cover every routed request"
    );
    let classified =
        m.served_primary + m.served_replica + m.served_origin_fallback + m.dropped_requests;

    // Drop rate bounded: with an admissible origin fallback and a huge
    // deadline, drops only happen once the first contact's own GSL is
    // saturated — they must stay a minority of the classified requests.
    assert!(
        m.dropped_requests < classified,
        "retry + fallback must rescue some requests ({} dropped of {classified})",
        m.dropped_requests
    );
}

#[test]
fn max_attempts_one_never_retries_in_a_full_run() {
    let log = log();
    let cfg = StarCdnConfig::starcdn_no_relay(9, 5_000_000);
    let overload = OverloadConfig {
        headroom: 1e-5,
        retry: RetryPolicy { max_attempts: 1, backoff_epochs: 0, deadline_ms: 1e9 },
    };
    let mut cdn = SpaceCdn::new(cfg);
    let m = run_space_overloaded(&mut cdn, &log, &FaultSchedule::empty(), &overload);
    assert_eq!(m.retry_attempts, 0, "max_attempts = 1 must never probe a replica");
    assert_eq!(m.served_replica, 0);
}
