//! Cross-crate integration: the full pipeline from workload model to
//! system metrics, exercising every crate together.

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::{Location, Trace};
use starcdn::variants::Variant;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::{sweep, Runner};
use starcdn_sim::world::World;

fn video_trace(hours: u64, seed: u64) -> Trace {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.02), &locations, seed);
    model.generate_trace(SimDuration::from_hours(hours), seed)
}

fn runner(trace: &Trace) -> Runner {
    Runner::new(World::starlink_nine_cities(), trace, SimConfig::default())
}

#[test]
fn paper_ordering_of_variants_holds() {
    // Fig. 7's qualitative result: Static ≥ StarCDN ≥ StarCDN-Fetch ≥ LRU
    // and StarCDN-Hashing ≥ LRU, at a mid-size cache.
    let trace = video_trace(2, 11);
    let r = runner(&trace);
    let cache = trace.unique_objects().1 / 100;
    let rhr = |v| r.run(v, cache).stats.request_hit_rate();

    let stat = rhr(Variant::StaticCache);
    let star = rhr(Variant::StarCdn { l: 4 });
    let fetch = rhr(Variant::StarCdnNoRelay { l: 4 });
    let hashing = rhr(Variant::StarCdnNoHashing);
    let lru = rhr(Variant::NaiveLru);

    assert!(stat > star, "static {stat} !> starcdn {star}");
    assert!(star > fetch, "relay must add hit rate: {star} !> {fetch}");
    assert!(fetch > lru, "hashing must add hit rate: {fetch} !> {lru}");
    assert!(hashing > lru, "relay-only must beat naive LRU: {hashing} !> {lru}");
}

#[test]
fn l9_beats_l4() {
    let trace = video_trace(2, 13);
    let r = runner(&trace);
    let cache = trace.unique_objects().1 / 100;
    let l4 = r.run(Variant::StarCdn { l: 4 }, cache).stats.request_hit_rate();
    let l9 = r.run(Variant::StarCdn { l: 9 }, cache).stats.request_hit_rate();
    assert!(l9 > l4, "L=9 {l9} !> L=4 {l4}");
}

#[test]
fn uplink_fraction_equals_byte_miss_rate_for_space_systems() {
    let trace = video_trace(1, 17);
    let r = runner(&trace);
    let cache = trace.unique_objects().1 / 50;
    for v in [Variant::StarCdn { l: 4 }, Variant::NaiveLru, Variant::StarCdnNoHashing] {
        let m = r.run(v, cache);
        let expect = 1.0 - m.stats.byte_hit_rate();
        assert!(
            (m.uplink_fraction() - expect).abs() < 1e-9,
            "{}: uplink {} vs 1-BHR {}",
            v.label(),
            m.uplink_fraction(),
            expect
        );
    }
}

#[test]
fn request_conservation_across_variants() {
    let trace = video_trace(1, 19);
    let r = runner(&trace);
    let n = r.log.len() as u64;
    let pts = sweep(
        &r,
        &[Variant::StarCdn { l: 4 }, Variant::NaiveLru, Variant::StaticCache, Variant::NoCache],
        &[1_000_000, 100_000_000],
    );
    for p in &pts {
        assert_eq!(p.metrics.stats.requests, n, "{}", p.variant.label());
        assert_eq!(p.metrics.latencies_ms.len() as u64, n);
        let served = p.metrics.served_local
            + p.metrics.served_relay_west
            + p.metrics.served_relay_east
            + p.metrics.served_ground;
        assert_eq!(served, n);
    }
}

#[test]
fn latency_medians_ordered_like_fig10() {
    // A hot workload (small catalog, high rate) so the median request is
    // a space hit, as in the paper's regime — at miss-dominated hit rates
    // the median latency is a ground fetch and the ordering is
    // meaningless.
    let locations = Location::akamai_nine();
    let mut params = TrafficClass::Video.params().scaled(0.005);
    params.base_rate_per_loc_hz = 2.0;
    let model = ProductionModel::build(params, &locations, 23);
    let trace = model.generate_trace(SimDuration::from_hours(2), 23);
    let r = runner(&trace);
    let cache = trace.unique_objects().1 / 3;
    let med = |v| r.run(v, cache).latency_cdf().median().unwrap();
    let star = med(Variant::StarCdn { l: 4 });
    let stat = med(Variant::StaticCache);
    let nocache = med(Variant::NoCache);
    assert!(stat < star, "static {stat} !< starcdn {star}");
    assert!(star < nocache, "starcdn {star} !< no-cache {nocache}");
    assert!(nocache / star > 1.3, "speedup only {}", nocache / star);
}

#[test]
fn hashing_consolidates_objects_onto_one_bucket() {
    // Route the same object from every first-contact satellite: with L=9
    // hashing, every resolved owner must serve the object's bucket.
    use starcdn::config::StarCdnConfig;
    use starcdn::system::SpaceCdn;
    use starcdn_cache::object::ObjectId;
    use starcdn_constellation::buckets::BucketTiling;
    use starcdn_orbit::walker::SatelliteId;

    let cdn = SpaceCdn::new(StarCdnConfig::starcdn(9, 1000));
    let tiling = BucketTiling::new(9).unwrap();
    let obj = ObjectId(12345);
    let bucket = tiling.bucket_of_object(obj.hash64());
    for orbit in (0..72).step_by(5) {
        for slot in (0..18).step_by(4) {
            let fc = SatelliteId::new(orbit, slot);
            let owner = cdn.resolve_route(fc, obj).unwrap().owner;
            assert_eq!(tiling.bucket_of_sat(owner), bucket, "fc={fc} owner={owner}");
        }
    }
}

#[test]
fn deterministic_across_full_pipeline() {
    let t1 = video_trace(1, 29);
    let t2 = video_trace(1, 29);
    assert_eq!(t1, t2);
    let m1 = runner(&t1).run(Variant::StarCdn { l: 4 }, 10_000_000);
    let m2 = runner(&t2).run(Variant::StarCdn { l: 4 }, 10_000_000);
    assert_eq!(m1.stats, m2.stats);
    assert_eq!(m1.latencies_ms, m2.latencies_ms);
}
