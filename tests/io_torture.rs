//! Integration: storage-fault torture for the checkpoint stack
//! (DESIGN.md §15).
//!
//! Every test drives the checkpointed engine or replayer through a
//! seeded [`FaultyIo`] schedule — short writes, write errors, fsync
//! failures, failed and torn renames, ENOSPC, crash points, read
//! errors, bit flips — and enforces one invariant:
//!
//! > A faulted run either completes bit-for-bit identical to the
//! > golden uninterrupted run, or fails with a typed
//! > [`CheckpointError`]. Resuming afterwards on real I/O either
//! > reproduces the golden run exactly or reports
//! > [`CheckpointError::NoValidCheckpoint`]. Nothing ever panics, and
//! > nothing ever silently diverges.
//!
//! The CI tests sweep a few dozen seeds per scenario; the
//! `torture` bench binary runs the same legs over 1000+ seeds.

use spacegen::trace::{LocationId, Request, Trace};
use starcdn::config::StarCdnConfig;
use starcdn::system::SpaceCdn;
use starcdn_cache::object::ObjectId;
use starcdn_constellation::failures::FailureModel;
use starcdn_constellation::schedule::FaultSchedule;
use starcdn_io::{FaultKind, FaultPlan, FaultyIo};
use starcdn_orbit::time::SimTime;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::{
    build_access_log, list_checkpoint_files, metrics_digest, replay_parallel_checkpointed,
    replay_parallel_checkpointed_io, resume_replay_checkpointed, resume_space_checkpointed,
    resume_space_checkpointed_io, run_space_checkpointed, run_space_checkpointed_io,
    sweep_stale_tmps, AccessLog, CheckpointError, CheckpointPolicy, OverloadConfig, World,
};
use starcdn_telemetry::MemoryRecorder;
use std::path::{Path, PathBuf};

const EPOCH_SECS: u64 = 15;

/// Seeds per scenario in the CI-sized sweep. The torture bench binary
/// runs the 1000+-seed version of the same legs.
fn seeds() -> u64 {
    std::env::var("IO_TORTURE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(32)
}

fn log() -> AccessLog {
    let w = World::starlink_nine_cities();
    let reqs: Vec<Request> = (0..2400u64)
        .map(|k| Request {
            time: SimTime::from_secs(k / 4),
            object: ObjectId((k * 7) % 64),
            size: 1000 + (k % 5) * 300,
            location: LocationId((k % 9) as u16),
        })
        .collect();
    build_access_log(&w, &Trace::new(reqs), EPOCH_SECS, &SimConfig::default().scheduler())
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("starcdn-torture-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn policy(dir: &Path, every: u64, keep: usize) -> CheckpointPolicy {
    CheckpointPolicy { every_n_epochs: every, dir: dir.to_path_buf(), keep_last: keep }
}

fn fresh_cdn() -> SpaceCdn {
    SpaceCdn::new(StarCdnConfig::starcdn(4, 2_000_000))
}

fn tmp_files(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".tmp"))
                .collect()
        })
        .unwrap_or_default()
}

/// The recovery half of every write-side sweep: after a faulted run
/// left `dir` in whatever state it left it, resume on real I/O must
/// either reproduce the golden digest or report `NoValidCheckpoint` —
/// in which case a fresh run must reproduce it. Either way the stale
/// tmp sweep on open leaves no `.tmp` files behind.
fn assert_recoverable(dir: &Path, pol: &CheckpointPolicy, log: &AccessLog, golden: u64, tag: &str) {
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    match resume_space_checkpointed(&mut fresh_cdn(), log, &sched, &ov, pol, &MemoryRecorder::new())
    {
        Ok(m) => assert_eq!(metrics_digest(&m), golden, "{tag}: resume diverged"),
        Err(CheckpointError::NoValidCheckpoint) => {
            let m = run_space_checkpointed(
                &mut fresh_cdn(),
                log,
                &sched,
                &ov,
                pol,
                &MemoryRecorder::new(),
            )
            .unwrap();
            assert_eq!(metrics_digest(&m), golden, "{tag}: fresh rerun diverged");
        }
        Err(e) => panic!("{tag}: unexpected resume error: {e}"),
    }
    assert!(tmp_files(dir).is_empty(), "{tag}: stale tmps survived the open sweep");
}

/// One engine leg: run under the given plan, demand typed-error-or-
/// bit-identical, then demand recoverability on real I/O.
fn engine_leg(golden: u64, log: &AccessLog, plan: FaultPlan, dir: &Path, tag: &str) -> FaultyIo {
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    let pol = policy(dir, 3, 0);
    let io = FaultyIo::new(plan);
    match run_space_checkpointed_io(
        &mut fresh_cdn(),
        log,
        &sched,
        &ov,
        &pol,
        &MemoryRecorder::new(),
        &io,
    ) {
        Ok(m) => assert_eq!(metrics_digest(&m), golden, "{tag}: faulted run silently diverged"),
        Err(CheckpointError::Io(e)) => {
            // Ordinary failures clean their own tmp; only a crash point
            // (dead process) may strand one for the next open's sweep.
            if !e.is_crash() {
                assert!(tmp_files(dir).is_empty(), "{tag}: non-crash failure leaked a tmp");
            }
        }
        Err(e) => panic!("{tag}: unexpected error type: {e}"),
    }
    assert_recoverable(dir, &pol, log, golden, tag);
    io
}

#[test]
fn engine_seeded_write_fault_sweep() {
    let log = log();
    let gold_dir = tmpdir("eng-gold");
    let golden = run_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &FaultSchedule::empty(),
        &OverloadConfig::disabled(),
        &policy(&gold_dir, 3, 0),
        &MemoryRecorder::new(),
    )
    .unwrap();
    let golden = metrics_digest(&golden);

    let mut faults = 0u64;
    for seed in 0..seeds() {
        let dir = tmpdir(&format!("eng-seeded-{seed}"));
        let io = engine_leg(golden, &log, FaultPlan::seeded(seed), &dir, &format!("seed {seed}"));
        faults += io.stats().faults;
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(faults > 0, "the sweep must actually inject faults");
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn engine_crash_point_sweep() {
    let log = log();
    let gold_dir = tmpdir("crash-gold");
    let golden = run_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &FaultSchedule::empty(),
        &OverloadConfig::disabled(),
        &policy(&gold_dir, 3, 0),
        &MemoryRecorder::new(),
    )
    .unwrap();
    let golden = metrics_digest(&golden);

    let mut crashes = 0u64;
    for seed in 0..seeds() {
        let dir = tmpdir(&format!("eng-crash-{seed}"));
        let io =
            engine_leg(golden, &log, FaultPlan::crash_only(seed), &dir, &format!("crash {seed}"));
        crashes += u64::from(io.crashed());
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(crashes > 0, "the sweep must actually hit crash points");
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn single_fault_with_keep2_always_leaves_a_restorable_checkpoint() {
    // The availability invariant: one file-damaging fault (no crash, no
    // ENOSPC) against `keep_last = 2` can damage at most one of the two
    // retained checkpoints, so as long as at least one rename completed
    // untouched, resume MUST succeed — fallback is allowed, failure is
    // not.
    let log = log();
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    let gold_dir = tmpdir("single-gold");
    let golden = run_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &sched,
        &ov,
        &policy(&gold_dir, 2, 2),
        &MemoryRecorder::new(),
    )
    .unwrap();
    let golden = metrics_digest(&golden);

    let mut restorable = 0u64;
    for seed in 0..seeds() * 2 {
        let dir = tmpdir(&format!("single-{seed}"));
        let pol = policy(&dir, 2, 2);
        let io = FaultyIo::new(FaultPlan::single(seed));
        let res = run_space_checkpointed_io(
            &mut fresh_cdn(),
            &log,
            &sched,
            &ov,
            &pol,
            &MemoryRecorder::new(),
            &io,
        );
        if let Ok(m) = &res {
            assert_eq!(metrics_digest(m), golden, "seed {seed}: faulted run silently diverged");
        }
        let stats = io.stats();
        assert!(!stats.crashed(), "single plans never crash");
        if stats.clean_renames >= 1 {
            restorable += 1;
            let m = resume_space_checkpointed(
                &mut fresh_cdn(),
                &log,
                &sched,
                &ov,
                &pol,
                &MemoryRecorder::new(),
            )
            .unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: {} clean renames on disk but resume failed: {e}",
                    stats.clean_renames
                )
            });
            assert_eq!(metrics_digest(&m), golden, "seed {seed}: resume diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(restorable > 0, "the sweep must exercise the restorable case");
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn replayer_seeded_and_crash_sweeps() {
    let log = log();
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    let cfg = StarCdnConfig::starcdn_no_relay(4, 2_000_000);
    let workers = 4;

    let gold_dir = tmpdir("rep-gold");
    let golden = replay_parallel_checkpointed(
        cfg.clone(),
        FailureModel::none(),
        &log,
        &sched,
        workers,
        &ov,
        &policy(&gold_dir, 3, 0),
        &MemoryRecorder::new(),
    )
    .unwrap();
    let golden = metrics_digest(&golden);

    for seed in 0..seeds() / 2 {
        for (mode, plan) in
            [("seeded", FaultPlan::seeded(seed)), ("crash", FaultPlan::crash_only(seed))]
        {
            let dir = tmpdir(&format!("rep-{mode}-{seed}"));
            let pol = policy(&dir, 3, 0);
            let io = FaultyIo::new(plan);
            match replay_parallel_checkpointed_io(
                cfg.clone(),
                FailureModel::none(),
                &log,
                &sched,
                workers,
                &ov,
                &pol,
                &MemoryRecorder::new(),
                &io,
            ) {
                Ok(m) => assert_eq!(
                    metrics_digest(&m),
                    golden,
                    "{mode} {seed}: faulted replay silently diverged"
                ),
                Err(CheckpointError::Io(_)) => {}
                Err(e) => panic!("{mode} {seed}: unexpected error type: {e}"),
            }
            let resumed = if list_checkpoint_files(&dir).is_empty() {
                replay_parallel_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &ov,
                    &pol,
                    &MemoryRecorder::new(),
                )
                .unwrap()
            } else {
                match resume_replay_checkpointed(
                    cfg.clone(),
                    FailureModel::none(),
                    &log,
                    &sched,
                    workers,
                    &ov,
                    &pol,
                    &MemoryRecorder::new(),
                ) {
                    Ok(m) => m,
                    Err(CheckpointError::NoValidCheckpoint) => replay_parallel_checkpointed(
                        cfg.clone(),
                        FailureModel::none(),
                        &log,
                        &sched,
                        workers,
                        &ov,
                        &pol,
                        &MemoryRecorder::new(),
                    )
                    .unwrap(),
                    Err(e) => panic!("{mode} {seed}: unexpected resume error: {e}"),
                }
            };
            assert_eq!(metrics_digest(&resumed), golden, "{mode} {seed}: recovery diverged");
            assert!(tmp_files(&dir).is_empty(), "{mode} {seed}: stale tmps survived");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&gold_dir);
}

#[test]
fn read_fault_resume_sweep() {
    // Torture the *resume* path over an intact checkpoint directory:
    // EIO and silent single-bit flips on every other read. The
    // container CRCs must turn every flip into a detected fallback —
    // an Ok resume is bit-identical, a failed one is typed.
    let log = log();
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    let dir = tmpdir("readf");
    let pol = policy(&dir, 2, 0);
    let golden =
        run_space_checkpointed(&mut fresh_cdn(), &log, &sched, &ov, &pol, &MemoryRecorder::new())
            .unwrap();
    let golden = metrics_digest(&golden);

    let (mut flips, mut eios, mut oks) = (0u64, 0u64, 0u64);
    for seed in 0..seeds() {
        let io = FaultyIo::new(FaultPlan::read_faults(seed));
        match resume_space_checkpointed_io(
            &mut fresh_cdn(),
            &log,
            &sched,
            &ov,
            &pol,
            &MemoryRecorder::new(),
            &io,
        ) {
            Ok(m) => {
                assert_eq!(metrics_digest(&m), golden, "seed {seed}: corrupted resume was silent");
                oks += 1;
            }
            Err(CheckpointError::NoValidCheckpoint) => {}
            Err(e) => panic!("seed {seed}: unexpected resume error: {e}"),
        }
        let s = io.stats();
        flips += s.bit_flips;
        eios += s.read_errs;
    }
    assert!(flips > 0, "the sweep must inject bit flips");
    assert!(eios > 0, "the sweep must inject read errors");
    assert!(oks > 0, "some seeds must still resume through the noise");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adversarial_checkpoint_dirs_never_panic() {
    use std::ffi::OsString;
    use std::os::unix::ffi::OsStringExt;

    let log = log();
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();

    // A directory holding real checkpoints *and* every flavor of junk:
    // resume must thread past all of it to the newest valid file.
    let dir = tmpdir("adversarial");
    let pol = policy(&dir, 5, 0);
    let golden =
        run_space_checkpointed(&mut fresh_cdn(), &log, &sched, &ov, &pol, &MemoryRecorder::new())
            .unwrap();
    let golden = metrics_digest(&golden);

    // Newer-than-valid garbage, so every piece sits first in fallback
    // order: a checkpoint-named subdirectory, a zero-length file,
    // random bytes, and a non-UTF-8 filename.
    std::fs::create_dir(dir.join("ckpt-9999999998.ckpt")).unwrap();
    std::fs::write(dir.join("ckpt-9999999997.ckpt"), b"").unwrap();
    std::fs::write(dir.join("ckpt-9999999996.ckpt"), vec![0xA5u8; 1313]).unwrap();
    let mut weird = b"ckpt-".to_vec();
    weird.extend([0xFF, 0xFE, 0x80]);
    weird.extend(b".ckpt");
    std::fs::write(dir.join(OsString::from_vec(weird)), b"not utf-8").unwrap();

    let m = resume_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &sched,
        &ov,
        &pol,
        &MemoryRecorder::new(),
    )
    .unwrap();
    assert_eq!(metrics_digest(&m), golden, "junk in the dir changed the resumed run");
    let _ = std::fs::remove_dir_all(&dir);

    // A directory holding ONLY junk: typed failure, no panic.
    let dir = tmpdir("adversarial-only-junk");
    let pol = policy(&dir, 5, 0);
    std::fs::create_dir(dir.join("ckpt-0000000005.ckpt")).unwrap();
    std::fs::write(dir.join("ckpt-0000000010.ckpt"), b"").unwrap();
    std::fs::write(dir.join("ckpt-0000000015.ckpt"), vec![0x5Au8; 777]).unwrap();
    let err = resume_space_checkpointed(
        &mut fresh_cdn(),
        &log,
        &sched,
        &ov,
        &pol,
        &MemoryRecorder::new(),
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::NoValidCheckpoint), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_write_strands_a_tmp_and_the_next_open_sweeps_it() {
    let log = log();
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    let dir = tmpdir("tmp-lifecycle");
    let pol = policy(&dir, 1, 0);

    // Ops: 0 = open sweep's list_dir, 1 = create_dir_all, 2 = create
    // tmp, 3 = the checkpoint body write — die there, mid-write.
    let io = FaultyIo::new(FaultPlan { crash_at_op: Some(3), ..FaultPlan::none() });
    let err = run_space_checkpointed_io(
        &mut fresh_cdn(),
        &log,
        &sched,
        &ov,
        &pol,
        &MemoryRecorder::new(),
        &io,
    )
    .unwrap_err();
    match err {
        CheckpointError::Io(e) => assert!(e.is_crash(), "expected a crash point, got {e}"),
        e => panic!("unexpected error type: {e}"),
    }
    let stranded = tmp_files(&dir);
    assert_eq!(stranded.len(), 1, "a crash mid-write must strand its tmp: {stranded:?}");

    // The sweep collects it…
    assert_eq!(sweep_stale_tmps(&dir), 1);
    assert!(tmp_files(&dir).is_empty());

    // …and a later crash's dropping is cleaned implicitly by the next
    // run's own open sweep.
    let io = FaultyIo::new(FaultPlan { crash_at_op: Some(3), ..FaultPlan::none() });
    let _ = run_space_checkpointed_io(
        &mut fresh_cdn(),
        &log,
        &sched,
        &ov,
        &pol,
        &MemoryRecorder::new(),
        &io,
    );
    assert_eq!(tmp_files(&dir).len(), 1);
    run_space_checkpointed(&mut fresh_cdn(), &log, &sched, &ov, &pol, &MemoryRecorder::new())
        .unwrap();
    assert!(tmp_files(&dir).is_empty(), "the open sweep must collect stale tmps");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_crash_checkpoint_failure_cleans_its_own_tmp() {
    let log = log();
    let sched = FaultSchedule::empty();
    let ov = OverloadConfig::disabled();
    let dir = tmpdir("tmp-clean");
    let pol = policy(&dir, 1, 0);

    // Every fsync fails: the first checkpoint write errors out, and
    // write_atomic must have removed its tmp on the way down.
    let io = FaultyIo::new(FaultPlan {
        seed: 0,
        kinds: vec![FaultKind::SyncFail],
        denom: 1,
        max_faults: None,
        enospc_budget: None,
        crash_at_op: None,
    });
    let err = run_space_checkpointed_io(
        &mut fresh_cdn(),
        &log,
        &sched,
        &ov,
        &pol,
        &MemoryRecorder::new(),
        &io,
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "got {err:?}");
    assert!(io.stats().sync_fails >= 1);
    assert!(tmp_files(&dir).is_empty(), "failed write must not leak its tmp");
    assert!(list_checkpoint_files(&dir).is_empty(), "nothing durable was ever renamed in");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_io_under_read_faults_is_typed_or_exact() {
    // The 39-byte access-log codec through the same seam: reads under
    // EIO/bit-flip plans must return Ok (possibly corrupt data — the
    // trace format carries no CRC by design) or a typed error; never
    // panic. Truncations must come back as typed corruption.
    let log = log();
    let dir = tmpdir("trace-io");
    let path = dir.join("log.bin");
    log.write_binary_path_io(&path, &starcdn_io::RealIo).unwrap();
    let back = AccessLog::read_binary_path_io(&path, &starcdn_io::RealIo).unwrap();
    assert_eq!(back.entries.len(), log.entries.len());

    for seed in 0..seeds() {
        let io = FaultyIo::new(FaultPlan::read_faults(seed));
        match AccessLog::read_binary_path_io(&path, &io) {
            Ok(_) | Err(_) => {} // typed either way; the point is no panic
        }
    }

    // A torn tail is corruption, not a panic and not a silent drop.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let err = AccessLog::read_binary_path(&path).unwrap_err();
    assert!(err.to_string().contains("truncated"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
