//! Integration: SpaceGEN's synthetic traces stand in for production
//! traces (the §4.3 validation, at test scale).

use spacegen::classes::TrafficClass;
use spacegen::generator::generate_from_production;
use spacegen::gpd::GlobalPopularity;
use spacegen::production::ProductionModel;
use spacegen::trace::{Location, Trace};
use spacegen::validate::{cdf_distance, object_spread_cdf, overlap_matrices, traffic_spread_cdf};
use starcdn_cache::policy::PolicyKind;
use starcdn_cache::simulate::hit_rate_curve;
use starcdn_orbit::time::SimDuration;

fn production() -> (Trace, usize) {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.05), &locations, 31);
    (model.generate_trace(SimDuration::from_hours(8), 31), locations.len())
}

fn synthetic_for(prod: &Trace, n: usize) -> Trace {
    let fastest = prod.split_by_location(n).iter().map(|t| t.len()).max().unwrap();
    generate_from_production(prod, n, fastest, 37)
}

#[test]
fn spreads_are_close() {
    let (prod, n) = production();
    let synth = synthetic_for(&prod, n);
    let ks_obj = cdf_distance(&object_spread_cdf(&prod, n), &object_spread_cdf(&synth, n));
    let ks_tra = cdf_distance(&traffic_spread_cdf(&prod, n), &traffic_spread_cdf(&synth, n));
    assert!(ks_obj < 0.25, "object spread KS {ks_obj}");
    assert!(ks_tra < 0.15, "traffic spread KS {ks_tra}");
}

#[test]
fn lru_hit_rate_curves_are_close() {
    // The Fig. 6c analog: LRU hit rates on the merged trace agree within
    // a few points across cache sizes.
    let (prod, n) = production();
    let synth = synthetic_for(&prod, n);
    let (_, ws) = prod.unique_objects();
    let sizes = [ws / 100, ws / 20, ws / 5, ws / 2];
    let hp = hit_rate_curve(PolicyKind::Lru, &sizes, &prod.accesses());
    let hs = hit_rate_curve(PolicyKind::Lru, &sizes, &synth.accesses());
    for (p, s) in hp.iter().zip(&hs) {
        let d = (p.stats.request_hit_rate() - s.stats.request_hit_rate()).abs();
        assert!(d < 0.08, "RHR diff {d:.3} at {} bytes", p.cache_bytes);
        let db = (p.stats.byte_hit_rate() - s.stats.byte_hit_rate()).abs();
        assert!(db < 0.08, "BHR diff {db:.3} at {} bytes", p.cache_bytes);
    }
}

#[test]
fn cross_location_overlap_structure_survives_generation() {
    let (prod, n) = production();
    let synth = synthetic_for(&prod, n);
    let mp = overlap_matrices(&prod, n);
    let ms = overlap_matrices(&synth, n);
    // Nearby same-language pair (NY=4, DC=3) keeps high traffic overlap;
    // distant pair (NY=4, Istanbul=8) keeps low object overlap — and the
    // contrast between them survives.
    assert!(
        ms.traffic[4][3] > ms.traffic[4][8] + 0.15,
        "near/far contrast lost: {:.2} vs {:.2}",
        ms.traffic[4][3],
        ms.traffic[4][8]
    );
    let d_near = (mp.traffic[4][3] - ms.traffic[4][3]).abs();
    assert!(d_near < 0.25, "near-pair traffic overlap drifted by {d_near}");
}

#[test]
fn gpd_popularity_mass_is_preserved() {
    let (prod, n) = production();
    let synth = synthetic_for(&prod, n);
    let gp = GlobalPopularity::from_trace(&prod, n);
    let gs = GlobalPopularity::from_trace(&synth, n);
    // Total request mass matches by construction; shared fraction is the
    // structural invariant to hold on to.
    assert!(
        (gp.shared_fraction() - gs.shared_fraction()).abs() < 0.3,
        "shared fraction {} vs {}",
        gp.shared_fraction(),
        gs.shared_fraction()
    );
}

#[test]
fn synthetic_respects_volume_and_rates() {
    let (prod, n) = production();
    let synth = synthetic_for(&prod, n);
    let ratio = synth.len() as f64 / prod.len() as f64;
    assert!((0.8..1.2).contains(&ratio), "volume ratio {ratio}");
    // Per-location rates proportional.
    let pl = prod.split_by_location(n);
    let sl = synth.split_by_location(n);
    let pmax = pl.iter().map(|t| t.len()).max().unwrap() as f64;
    let smax = sl.iter().map(|t| t.len()).max().unwrap() as f64;
    for i in 0..n {
        let dp = pl[i].len() as f64 / pmax;
        let ds = sl[i].len() as f64 / smax;
        assert!((dp - ds).abs() < 0.1, "location {i} rate share {dp:.2} vs {ds:.2}");
    }
}
