//! SpaceGEN end to end: extract traffic models from a production trace,
//! generate a synthetic trace, and validate its fidelity.
//!
//! ```sh
//! cargo run --release --example spacegen_demo
//! ```

use spacegen::classes::TrafficClass;
use spacegen::fd::FootprintDescriptor;
use spacegen::generator::generate_from_production;
use spacegen::gpd::GlobalPopularity;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use spacegen::validate::{cdf_distance, object_spread_cdf, overlap_matrices, traffic_spread_cdf};
use starcdn_cache::policy::PolicyKind;
use starcdn_cache::simulate::hit_rate_curve;
use starcdn_orbit::time::SimDuration;

fn main() {
    // 1. "Production" trace (the Akamai-trace substitute; see DESIGN.md).
    let locations = Location::akamai_nine();
    let n = locations.len();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.05), &locations, 1);
    let production = model.generate_trace(SimDuration::from_hours(6), 1);
    println!(
        "production: {} requests / {} objects",
        production.len(),
        production.unique_objects().0
    );

    // 2. Traffic models: one pFD per location plus the GPD.
    let per_loc = production.split_by_location(n);
    for (i, t) in per_loc.iter().enumerate().take(3) {
        let fd = FootprintDescriptor::from_trace(t, i as u64);
        println!(
            "  pFD[{}] ({}): rate {:.2}/s, max stack distance {:.2} GB, {} (p,s)-classes",
            i,
            locations[i].name,
            fd.req_rate_hz,
            fd.max_stack_distance as f64 / 1e9,
            fd.class_count()
        );
    }
    let gpd = GlobalPopularity::from_trace(&production, n);
    println!(
        "  GPD: {} objects, {:.0}% accessed from 2+ locations",
        gpd.len(),
        gpd.shared_fraction() * 100.0
    );
    // The models are serializable — the paper publishes its models the
    // same way.
    println!("  GPD JSON export: {} bytes", gpd.to_json().len());

    // 3. Generate the synthetic trace (Algorithm 1).
    let fastest = per_loc.iter().map(|t| t.len()).max().unwrap();
    let synthetic = generate_from_production(&production, n, fastest, 2);
    println!("synthetic: {} requests / {} objects", synthetic.len(), synthetic.unique_objects().0);

    // 4. Validate: spreads, overlap, hit-rate curves (Fig. 6's checks).
    let ks_obj =
        cdf_distance(&object_spread_cdf(&production, n), &object_spread_cdf(&synthetic, n));
    let ks_tra =
        cdf_distance(&traffic_spread_cdf(&production, n), &traffic_spread_cdf(&synthetic, n));
    println!("spread fidelity: KS objects {ks_obj:.3}, KS traffic {ks_tra:.3}");

    let m = overlap_matrices(&synthetic, n);
    println!(
        "synthetic NYC↔DC overlap: objects {:.0}%, traffic {:.0}%",
        m.objects[4][3] * 100.0,
        m.traffic[4][3] * 100.0
    );

    let (_, ws) = production.unique_objects();
    let sizes = [ws / 100, ws / 20, ws / 5];
    let hp = hit_rate_curve(PolicyKind::Lru, &sizes, &production.accesses());
    let hs = hit_rate_curve(PolicyKind::Lru, &sizes, &synthetic.accesses());
    for (i, &s) in sizes.iter().enumerate() {
        println!(
            "LRU @ {:>6.2} GB: production {:.1}% vs synthetic {:.1}% RHR",
            s as f64 / 1e9,
            hp[i].stats.request_hit_rate() * 100.0,
            hs[i].stats.request_hit_rate() * 100.0
        );
    }
}
