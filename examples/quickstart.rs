//! Quickstart: cache content in space in ~40 lines.
//!
//! Builds the Starlink shell over the nine trace cities, generates a
//! small video workload, and compares full StarCDN against the naive
//! per-satellite LRU baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::variants::Variant;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn main() {
    // 1. A production-like video workload over the paper's nine cities.
    let locations = Location::akamai_nine();
    let params = TrafficClass::Video.params().scaled(0.05);
    let model = ProductionModel::build(params, &locations, 42);
    let trace = model.generate_trace(SimDuration::from_hours(3), 42);
    println!("workload: {} requests over {} objects", trace.len(), trace.unique_objects().0);

    // 2. The world: 72×18 Starlink shell, 15 s scheduler epochs.
    let world = World::starlink_nine_cities();
    let runner = Runner::new(world, &trace, SimConfig::default());

    // 3. Compare StarCDN (L = 4, hashing + relayed fetch) with naive LRU.
    let cache_bytes = 200 * 1024 * 1024; // per-satellite cache
    for variant in [Variant::StarCdn { l: 4 }, Variant::NaiveLru] {
        let m = runner.run(variant, cache_bytes);
        println!(
            "{:<16} hit rate {:>5.1}%  uplink {:>5.1}% of no-cache  median latency {:>5.1} ms",
            variant.label(),
            m.stats.request_hit_rate() * 100.0,
            m.uplink_fraction() * 100.0,
            m.latency_cdf().median().unwrap_or(0.0),
        );
    }
}
