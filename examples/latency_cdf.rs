//! User-perceived latency across systems (§5.3): StarCDN vs regular
//! Starlink vs terrestrial CDNs.
//!
//! ```sh
//! cargo run --release --example latency_cdf
//! ```

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::variants::Variant;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn main() {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.05), &locations, 5);
    let trace = model.generate_trace(SimDuration::from_hours(3), 5);
    let cache = trace.unique_objects().1 / 50;
    let runner = Runner::new(World::starlink_nine_cities(), &trace, SimConfig::default());

    println!("{:<22} {:>8} {:>8} {:>8} {:>9}", "system", "p25", "median", "p90", "p99");
    let mut medians = Vec::new();
    for variant in
        [Variant::TerrestrialCdn, Variant::StaticCache, Variant::StarCdn { l: 4 }, Variant::NoCache]
    {
        let m = runner.run(variant, cache);
        let cdf = m.latency_cdf();
        println!(
            "{:<22} {:>6.1}ms {:>6.1}ms {:>6.1}ms {:>7.1}ms",
            variant.label(),
            cdf.quantile(0.25).unwrap(),
            cdf.median().unwrap(),
            cdf.quantile(0.90).unwrap(),
            cdf.quantile(0.99).unwrap(),
        );
        medians.push((variant, cdf.median().unwrap()));
    }
    let star = medians.iter().find(|(v, _)| matches!(v, Variant::StarCdn { .. })).unwrap().1;
    let nocache = medians.iter().find(|(v, _)| matches!(v, Variant::NoCache)).unwrap().1;
    println!(
        "\nStarCDN improves median latency {:.1}x over regular Starlink (paper: ~2.5x)",
        nocache / star
    );
}
