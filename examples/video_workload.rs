//! Video content delivery from space: the paper's headline scenario.
//!
//! Runs every system variant of Fig. 7 on a video workload and prints
//! hit rates, uplink usage, and the serve-source breakdown, showing
//! where consistent hashing and relayed fetch each earn their keep.
//!
//! ```sh
//! cargo run --release --example video_workload
//! ```

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::variants::Variant;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn main() {
    let locations = Location::akamai_nine();
    let params = TrafficClass::Video.params().scaled(0.1);
    let model = ProductionModel::build(params, &locations, 7);
    let trace = model.generate_trace(SimDuration::from_hours(6), 7);
    let (uniq, ws) = trace.unique_objects();
    println!(
        "video workload: {} requests, {} objects, {:.1} GB working set\n",
        trace.len(),
        uniq,
        ws as f64 / 1e9
    );

    let runner = Runner::new(World::starlink_nine_cities(), &trace, SimConfig::default());
    let cache = ws / 100; // 1% of the working set per satellite

    println!(
        "{:<22} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "system", "RHR", "BHR", "uplink", "local", "relayed", "ground"
    );
    for variant in [
        Variant::StaticCache,
        Variant::StarCdn { l: 9 },
        Variant::StarCdn { l: 4 },
        Variant::StarCdnNoRelay { l: 4 },
        Variant::StarCdnNoHashing,
        Variant::NaiveLru,
    ] {
        let m = runner.run(variant, cache);
        let total = m.stats.requests.max(1) as f64;
        println!(
            "{:<22} {:>6.1}% {:>6.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            variant.label(),
            m.stats.request_hit_rate() * 100.0,
            m.stats.byte_hit_rate() * 100.0,
            m.uplink_fraction() * 100.0,
            m.served_local as f64 / total * 100.0,
            (m.served_relay_west + m.served_relay_east) as f64 / total * 100.0,
            m.served_ground as f64 / total * 100.0,
        );
    }
    println!("\nrelayed fetch turns a slice of ground fetches into space hits;");
    println!("hashing consolidates each object onto one bucket owner per region.");
}
