//! From a TLE catalog to a running space CDN.
//!
//! The paper feeds CelesTrak TLEs into its simulator and derives the ISL
//! grid (and the out-of-slot failure set) from shell information. This
//! example does the same end to end — here with a synthesized catalog,
//! since the build is offline; point `Tle::parse_catalog` at a real
//! CelesTrak download to run actual elements.
//!
//! ```sh
//! cargo run --release --example tle_constellation
//! ```

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::variants::Variant;
use starcdn_orbit::fleet::fleet_from_tles;
use starcdn_orbit::time::SimDuration;
use starcdn_orbit::tle::{synthesize_tle, Tle};
use starcdn_orbit::walker::WalkerConstellation;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn main() {
    // 1. A TLE catalog. Synthesized from the shell geometry with ~9% of
    //    satellites missing — the paper observed 126 of 1296 out of slot.
    let shell = WalkerConstellation::starlink_shell1();
    let tles: Vec<Tle> = shell
        .satellites()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 11 != 0) // drop ~9%
        .map(|(i, sat)| {
            let o = &sat.orbit;
            let (name, l1, l2) = synthesize_tle(
                &format!("STARLINK-SYN-{i}"),
                44000 + i as u32,
                o.inclination_rad.to_degrees(),
                o.raan_rad.to_degrees(),
                o.phase_rad.to_degrees().rem_euclid(360.0),
                86400.0 / o.period_s(),
            );
            Tle::parse(&name, &l1, &l2).expect("synthesized TLE parses")
        })
        .collect();
    println!("catalog: {} TLEs", tles.len());

    // 2. Cluster into the 72×18 grid; gaps become the failure set.
    let fleet = fleet_from_tles(&tles, 72, 18).expect("fleet assembles");
    println!(
        "fleet: {} satellites on the grid, {} slots empty (out of slot)",
        fleet.satellites.len(),
        fleet.empty_slots.len()
    );

    // 3. A world from the fleet + a small workload.
    let world = World::from_tle_fleet(&fleet, Location::akamai_nine());
    println!("broken ISLs from the gaps: {}", world.failures.broken_isl_count(&world.grid));

    let model =
        ProductionModel::build(TrafficClass::Video.params().scaled(0.05), &world.locations, 7);
    let trace = model.generate_trace(SimDuration::from_hours(2), 7);
    let cache = trace.unique_objects().1 / 50;
    let runner = Runner::new(world, &trace, SimConfig::default());

    // 4. StarCDN on the degraded fleet (buckets of missing slots remap).
    for v in [Variant::StarCdn { l: 9 }, Variant::NaiveLru] {
        let m = runner.run(v, cache);
        println!(
            "{:<16} RHR {:>5.1}%  uplink {:>5.1}%  median {:>5.1} ms",
            v.label(),
            m.stats.request_hit_rate() * 100.0,
            m.uplink_fraction() * 100.0,
            m.latency_cdf().median().unwrap_or(0.0)
        );
    }
}
