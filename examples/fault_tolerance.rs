//! Robustness to unavailability (§3.4 / §5.4): kill ~10 % of the
//! constellation, watch bucket responsibilities remap to the next
//! available satellites, and measure the hit-rate cost.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use spacegen::classes::TrafficClass;
use spacegen::production::ProductionModel;
use spacegen::trace::Location;
use starcdn::variants::Variant;
use starcdn_constellation::buckets::BucketTiling;
use starcdn_constellation::failures::FailureModel;
use starcdn_orbit::time::SimDuration;
use starcdn_sim::engine::SimConfig;
use starcdn_sim::experiment::Runner;
use starcdn_sim::world::World;

fn main() {
    let locations = Location::akamai_nine();
    let model = ProductionModel::build(TrafficClass::Video.params().scaled(0.05), &locations, 3);
    let trace = model.generate_trace(SimDuration::from_hours(3), 3);
    let cache = trace.unique_objects().1 / 100;

    let healthy_world = World::starlink_nine_cities();
    let grid = healthy_world.grid.clone();

    // The paper's observed outage: 126 of 1296 slots out of service.
    let failures = FailureModel::sample(&grid, 126, 9);
    println!(
        "outage: {} dead satellites, {} broken ISLs",
        failures.dead_count(),
        failures.broken_isl_count(&grid)
    );

    // Show the remap for a few dead satellites.
    let tiling = BucketTiling::new(9).unwrap();
    for dead in failures.dead().take(4) {
        let heir = failures.resolve_owner(&grid, dead).unwrap();
        println!(
            "  {dead} (bucket {:?}) → {heir} now serves buckets {:?}",
            tiling.bucket_of_sat(dead).0,
            failures
                .buckets_served(&grid, &tiling)
                .iter()
                .find(|(id, _)| *id == heir)
                .map(|(_, b)| b.iter().map(|x| x.0).collect::<Vec<_>>())
                .unwrap_or_default()
        );
    }

    // Hit-rate cost of the outage.
    let sim = SimConfig::default();
    let healthy = Runner::new(healthy_world, &trace, sim).run(Variant::StarCdn { l: 9 }, cache);
    let degraded_world = World::starlink_nine_cities().with_failures(failures);
    let degraded = Runner::new(degraded_world, &trace, sim).run(Variant::StarCdn { l: 9 }, cache);

    println!(
        "\nhealthy:  RHR {:.1}%  uplink {:.1}%",
        healthy.stats.request_hit_rate() * 100.0,
        healthy.uplink_fraction() * 100.0
    );
    println!(
        "degraded: RHR {:.1}%  uplink {:.1}%  (still saving {:.1}% of uplink)",
        degraded.stats.request_hit_rate() * 100.0,
        degraded.uplink_fraction() * 100.0,
        (1.0 - degraded.uplink_fraction()) * 100.0
    );
}
