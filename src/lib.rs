//! Workspace-root facade: re-exports the StarCDN reproduction crates so
//! the examples and integration tests have one import surface.
//!
//! The real APIs live in the member crates:
//!
//! * [`starcdn`] — the system (consistent hashing, relayed fetch,
//!   baselines, latency model);
//! * [`spacegen`] — the trace generator;
//! * [`starcdn_orbit`], [`starcdn_constellation`], [`starcdn_cache`] —
//!   substrates;
//! * [`starcdn_sim`] — the simulation engine.

pub use spacegen;
pub use starcdn;
pub use starcdn_cache;
pub use starcdn_constellation;
pub use starcdn_orbit;
pub use starcdn_sim;
